//! Minimal JSON layer: write-side rendering and read-side line framing.
//!
//! The workspace builds offline with zero external dependencies, so the
//! experiment and benchmark binaries emit machine-readable output through
//! this module instead of `serde`/`serde_json`. Since the event-sourced
//! market server journals its state transitions as one JSON line per event,
//! the module also carries the matching read side: [`JsonValue::parse`]
//! turns one line back into a tree, and the accessors
//! ([`JsonValue::get`], [`JsonValue::as_f64`], …) pick it apart.
//!
//! **Round-trip exactness.** A finite `f64` rendered by this module parses
//! back *bit-identically*: rendering uses Rust's shortest-roundtrip float
//! formatting (with integral values printed as integers, and `-0.0` kept
//! signed), and parsing uses Rust's correctly rounded `str::parse::<f64>`.
//! That guarantee is what lets the crash-recovery journal replay payments,
//! welfare, and queue backlogs without drifting by an ulp.
//!
//! # Example
//!
//! ```
//! use metrics::json::JsonValue;
//!
//! let line = JsonValue::object()
//!     .field("bench", "vcg_round/100")
//!     .field("median_ns", 1250.0)
//!     .field("ok", true)
//!     .to_string();
//! assert_eq!(line, r#"{"bench":"vcg_round/100","median_ns":1250,"ok":true}"#);
//! let back = JsonValue::parse(&line).unwrap();
//! assert_eq!(back.get("median_ns").and_then(|v| v.as_f64()), Some(1250.0));
//! ```

use std::fmt;

/// A JSON value tree. Construct with [`JsonValue::object`],
/// [`JsonValue::array`], or the `From` impls; render with `Display`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite or non-finite f64 (non-finite renders as `null`, like
    /// `serde_json`'s default behaviour).
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Starts an empty object; chain [`field`](Self::field) to fill it.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Starts an empty array; chain [`item`](Self::item) to fill it.
    pub fn array() -> JsonValue {
        JsonValue::Array(Vec::new())
    }

    /// Adds/overwrites a key on an object (panics on non-objects: that is a
    /// programming error, not a data error).
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Object(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
            }
            _ => panic!("JsonValue::field on a non-object"),
        }
        self
    }

    /// Appends an element to an array (panics on non-arrays).
    pub fn item(mut self, value: impl Into<JsonValue>) -> JsonValue {
        match &mut self {
            JsonValue::Array(items) => items.push(value.into()),
            _ => panic!("JsonValue::item on a non-array"),
        }
        self
    }

    /// Parses one complete JSON value from `input` (surrounding whitespace
    /// allowed, nothing else). This is the read side of the journal's
    /// line framing: a torn or malformed line fails with the byte offset
    /// where parsing gave up, so the caller can truncate and move on.
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing bytes after the JSON value"));
        }
        Ok(value)
    }

    /// Field lookup on an object (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one and representable exactly
    /// (non-negative, integral, below 2⁵³ — the range where the `f64`
    /// carrier is lossless).
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        (v >= 0.0 && v == v.trunc() && v < 9.0e15).then_some(v as u64)
    }

    /// [`JsonValue::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs in insertion order, if this is an object.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A parse failure: where in the input, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset at which the parser gave up.
    pub offset: usize,
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Recursive-descent parser over the raw bytes (ASCII structure; string
/// contents are decoded as UTF-8 with JSON escapes).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected byte")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII slice");
        let v: f64 = token
            .parse()
            .map_err(|_| self.err(&format!("malformed number `{token}`")))?;
        if !v.is_finite() {
            // The writer renders non-finite values as `null`, so a number
            // token overflowing f64 can only be garbage.
            return Err(self.err(&format!("number `{token}` overflows f64")));
        }
        Ok(JsonValue::Number(v))
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let token = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(token, 16).map_err(|_| self.err("malformed \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let hi = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&hi) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            Err(self.err("unpaired surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("bad \\u code point"))
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Types that can render themselves as a [`JsonValue`]. The in-repo
/// stand-in for `serde::Serialize`.
pub trait ToJson {
    /// Converts to a JSON tree.
    fn to_json(&self) -> JsonValue;
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

macro_rules! impl_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for JsonValue {
            fn from(v: $t) -> Self {
                JsonValue::Number(v as f64)
            }
        }
    )*};
}

impl_from_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<JsonValue> + Clone> From<&[T]> for JsonValue {
    fn from(v: &[T]) -> Self {
        JsonValue::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        v.map_or(JsonValue::Null, Into::into)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            // Remaining C0 controls (mandatory), DEL and the C1 block
            // (legal raw, but control characters have no business
            // unescaped in a log line), and the U+2028/U+2029 line
            // separators (valid JSON that breaks JavaScript consumers).
            c if (c as u32) < 0x20
                || (0x7f..=0x9f).contains(&(c as u32))
                || c == '\u{2028}'
                || c == '\u{2029}' =>
            {
                write!(f, "\\u{:04x}", c as u32)?
            }
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_number(f: &mut fmt::Formatter<'_>, v: f64) -> fmt::Result {
    if !v.is_finite() {
        // JSON has no NaN/Inf; `serde_json` emits null here too.
        return f.write_str("null");
    }
    if v == v.trunc() && v.abs() < 9.0e15 && !(v == 0.0 && v.is_sign_negative()) {
        // Render integral values without a fraction part so ids and
        // counters round-trip as integers. `-0.0` is excluded: `0` would
        // parse back as `+0.0` and break the bitwise round-trip.
        write!(f, "{}", v as i64)
    } else {
        write!(f, "{v}")
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(v) => write_number(f, *v),
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl ToJson for crate::stats::Summary {
    fn to_json(&self) -> JsonValue {
        JsonValue::object()
            .field("n", self.n)
            .field("mean", self.mean)
            .field("std", self.std)
            .field("min", self.min)
            .field("max", self.max)
            .field("median", self.median)
    }
}

impl ToJson for crate::series::SeriesSet {
    fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        for name in self.names() {
            let series = self.get(name).unwrap_or(&[]);
            obj = obj.field(name, series.to_vec());
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::from(true).to_string(), "true");
        assert_eq!(JsonValue::from(3usize).to_string(), "3");
        assert_eq!(JsonValue::from(2.5).to_string(), "2.5");
        assert_eq!(JsonValue::from(-7i64).to_string(), "-7");
        assert_eq!(JsonValue::from(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        let s = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn control_characters_all_escape() {
        // Backspace and form feed get their shorthands; every other C0
        // control, DEL, and the C1 block become \uXXXX — no raw control
        // byte can reach a log line.
        assert_eq!(
            JsonValue::from("a\u{8}b\u{c}c").to_string(),
            "\"a\\bb\\fc\""
        );
        for code in (0u32..0x20).chain(0x7f..=0x9f) {
            let c = char::from_u32(code).unwrap();
            let rendered = JsonValue::from(c.to_string()).to_string();
            assert!(
                rendered.chars().all(|ch| ch as u32 >= 0x20),
                "control {code:#x} leaked into {rendered:?}"
            );
        }
        // A round-trippable spot check for a C1 control and DEL.
        assert_eq!(JsonValue::from("\u{7f}").to_string(), "\"\\u007f\"");
        assert_eq!(JsonValue::from("\u{85}").to_string(), "\"\\u0085\"");
    }

    #[test]
    fn js_line_separators_escape() {
        assert_eq!(
            JsonValue::from("a\u{2028}b\u{2029}c").to_string(),
            "\"a\\u2028b\\u2029c\""
        );
        // Ordinary non-ASCII text passes through untouched.
        assert_eq!(JsonValue::from("µs — ok").to_string(), "\"µs — ok\"");
    }

    #[test]
    fn non_finite_floats_render_null_everywhere() {
        assert_eq!(JsonValue::from(f64::INFINITY).to_string(), "null");
        assert_eq!(JsonValue::from(f64::NEG_INFINITY).to_string(), "null");
        assert_eq!(JsonValue::from(f32::NAN).to_string(), "null");
        // Inside containers too — the guard lives at render time, so no
        // construction path can smuggle an `inf` token into the output.
        let o = JsonValue::object()
            .field("bad", f64::NAN)
            .field("v", vec![1.0, f64::INFINITY]);
        assert_eq!(o.to_string(), r#"{"bad":null,"v":[1,null]}"#);
        // Values near the integer-rendering cutoff stay finite and exact.
        assert_eq!(JsonValue::from(9.0e15).to_string(), "9000000000000000");
        assert_eq!(JsonValue::from(9.1e15).to_string(), "9100000000000000");
    }

    #[test]
    fn objects_keep_order_and_overwrite() {
        let o = JsonValue::object()
            .field("b", 1)
            .field("a", 2)
            .field("b", 3);
        assert_eq!(o.to_string(), r#"{"b":3,"a":2}"#);
    }

    #[test]
    fn arrays_nest() {
        let a = JsonValue::array()
            .item(1)
            .item(JsonValue::object().field("k", "v"))
            .item(vec![1.0, 2.0]);
        assert_eq!(a.to_string(), r#"[1,{"k":"v"},[1,2]]"#);
    }

    #[test]
    fn summary_to_json_line() {
        let s = Summary::of(&[1.0, 2.0, 3.0]).to_json().to_string();
        assert!(s.starts_with(r#"{"n":3,"mean":2,"#), "{s}");
        assert!(s.contains(r#""median":2"#));
    }

    #[test]
    fn seriesset_to_json() {
        let mut s = crate::series::SeriesSet::new();
        s.push("welfare", 1.0);
        s.push("welfare", 2.5);
        assert_eq!(s.to_json().to_string(), r#"{"welfare":[1,2.5]}"#);
    }

    // ---- read side ------------------------------------------------------

    #[test]
    fn parse_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Number(-7.0));
        assert_eq!(
            JsonValue::parse("2.5e3").unwrap(),
            JsonValue::Number(2500.0)
        );
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::String("hi".into())
        );
    }

    #[test]
    fn parse_containers_and_accessors() {
        let v = JsonValue::parse(r#"{"a":[1,{"b":null}],"c":"x","d":true}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("d").and_then(JsonValue::as_bool), Some(true));
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b"), Some(&JsonValue::Null));
        // Misses return None rather than panicking.
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("c").and_then(JsonValue::as_f64), None);
        assert_eq!(JsonValue::Null.get("a"), None);
    }

    #[test]
    fn parse_string_escapes() {
        let v = JsonValue::parse(r#""a\"b\\c\nd\te\u0001f\u00b5\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}fµ😀"));
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(JsonValue::Number(0.0).as_u64(), Some(0));
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
        assert_eq!(JsonValue::Number(4.0).as_usize(), Some(4));
        // Just under the lossless cutoff round-trips; at/above is refused.
        assert_eq!(
            JsonValue::Number(8.999999999999998e15).as_u64(),
            Some(8999999999999998)
        );
        assert_eq!(JsonValue::Number(9.0e15).as_u64(), None);
    }

    #[test]
    fn parse_rejects_garbage_and_torn_lines() {
        for bad in [
            "",
            "   ",
            "nul",
            "tru",
            "{",
            "[1,",
            "\"abc",
            "{\"a\":}",
            "1 2",
            "{}x",
            "+5",
            "1e400",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"a\u{1}b\"",
            "[1,]",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Every proper prefix of a realistic journal line must be rejected —
        // this is what lets recovery detect a torn trailing write.
        let line = r#"{"event":"seal","round":3,"sealed":[{"bidder":0,"cost":1.25}]}"#;
        for cut in 1..line.len() {
            assert!(
                JsonValue::parse(&line[..cut]).is_err(),
                "accepted torn prefix {:?}",
                &line[..cut]
            );
        }
        assert!(JsonValue::parse(line).is_ok());
        let err = JsonValue::parse("{\"a\":nope}").unwrap_err();
        assert_eq!(err.offset, 5);
        assert!(err.to_string().contains("byte 5"), "{err}");
    }

    #[test]
    fn floats_round_trip_bitwise() {
        // The journal's replay-equality contract rests on this: any finite
        // f64 the writer renders must parse back to the same bits.
        let mut samples = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            2.0 / 3.0,
            1e-300,
            -1e300,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            9.007199254740991e15, // 2^53 - 1
            9.0e15,
            -8.999999999999998e15,
            std::f64::consts::PI,
        ];
        // A deterministic spread of awkward mantissas (xorshift — no
        // external RNG in this workspace).
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = f64::from_bits(x);
            if v.is_finite() {
                samples.push(v);
            }
        }
        for v in samples {
            let line = JsonValue::from(v).to_string();
            let back = JsonValue::parse(&line)
                .unwrap_or_else(|e| panic!("{v:?} rendered {line:?}: {e}"))
                .as_f64()
                .unwrap();
            assert_eq!(
                back.to_bits(),
                v.to_bits(),
                "{v:?} rendered {line:?} parsed back as {back:?}"
            );
        }
    }

    #[test]
    fn negative_zero_stays_signed() {
        assert_eq!(JsonValue::from(-0.0f64).to_string(), "-0");
        let back = JsonValue::parse("-0").unwrap().as_f64().unwrap();
        assert!(back == 0.0 && back.is_sign_negative());
        // Positive zero still renders as the plain integer.
        assert_eq!(JsonValue::from(0.0f64).to_string(), "0");
    }

    #[test]
    fn structured_round_trip() {
        let original = JsonValue::object()
            .field("run", "exp_e9")
            .field("n", 3usize)
            .field("ratio", 0.8317281)
            .field("tags", JsonValue::array().item("a\nb").item(false))
            .field("nested", JsonValue::object().field("k", JsonValue::Null));
        let line = original.to_string();
        assert_eq!(JsonValue::parse(&line).unwrap(), original);
    }
}
