//! Summary statistics.

/// Five-number-plus summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
}

impl Summary {
    /// Computes a summary. Returns an all-zero summary for empty input.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            };
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
        }
    }
}

/// Percentile (0–100) by linear interpolation on a *sorted* slice.
///
/// Edge contract (shared with [`percentile`], which telemetry readout
/// calls on live histogram data): a single-element slice returns that
/// element for every `p`; infinities are ordered normally; empty input,
/// `p` outside `[0, 100]`, and NaN-containing input all **panic with a
/// named message** — returning NaN would let a poisoned latency series
/// propagate silently into dashboards and CI gates.
///
/// # Panics
///
/// - `"percentile of empty slice"` if the slice is empty.
/// - `"percentile must be in [0, 100]"` if `p` is outside that range.
/// - `"percentile of NaN-containing input"` if any element is NaN.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    assert!(
        !sorted.iter().any(|v| v.is_nan()),
        "percentile of NaN-containing input"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    // Exact rank: skip interpolation so an infinite endpoint is returned
    // as-is instead of poisoning the blend with `inf * 0 = NaN`.
    if frac == 0.0 {
        return sorted[lo];
    }
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Percentile of an unsorted sample. Same edge contract as
/// [`percentile_sorted`]: NaN-containing input panics with a named
/// message *regardless of sample size* (a bare `[NaN]` used to slip
/// through because a one-element sort never compares).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

/// Jain's fairness index of a non-negative allocation:
/// `(Σx)² / (n·Σx²)` ∈ `(0, 1]`, where 1 means perfectly equal shares.
///
/// Returns 1.0 for an empty or all-zero allocation (vacuously fair).
pub fn jain_fairness(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 1.0;
    }
    let sum: f64 = x.iter().sum();
    let sumsq: f64 = x.iter().map(|v| v * v).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (x.len() as f64 * sumsq)
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0.0 when either sample is constant.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson length mismatch");
    assert!(!a.is_empty(), "pearson of empty samples");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(percentile(&v, 50.0), 25.0);
        assert!((percentile(&v, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single() {
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 100.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty slice")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn percentile_out_of_range_panics() {
        let _ = percentile(&[1.0, 2.0], 100.5);
    }

    #[test]
    #[should_panic(expected = "percentile of NaN-containing input")]
    fn percentile_nan_panics() {
        let _ = percentile(&[1.0, f64::NAN, 3.0], 50.0);
    }

    #[test]
    #[should_panic(expected = "percentile of NaN-containing input")]
    fn percentile_single_nan_panics() {
        // A one-element sort never compares, so the old unwrap-in-sort
        // let a bare NaN through; the explicit scan must not.
        let _ = percentile(&[f64::NAN], 50.0);
    }

    #[test]
    fn percentile_orders_infinities() {
        let v = [f64::INFINITY, 1.0, f64::NEG_INFINITY];
        assert_eq!(percentile(&v, 0.0), f64::NEG_INFINITY);
        assert_eq!(percentile(&v, 50.0), 1.0);
        assert_eq!(percentile(&v, 100.0), f64::INFINITY);
    }

    #[test]
    fn jain_extremes() {
        assert!((jain_fairness(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // All mass on one of n participants → 1/n.
        let j = jain_fairness(&[1.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_monotone_in_equality() {
        let unequal = jain_fairness(&[10.0, 1.0, 1.0]);
        let mild = jain_fairness(&[4.0, 4.0, 4.0]);
        assert!(mild > unequal);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0]), 0.0);
    }
}
