//! Differential suite for the leave-one-out payment engines.
//!
//! Three implementations of `W*₋ᵢ` are held against each other across all
//! four constraint combinations (unconstrained / cardinality K / budget /
//! K + budget) on seeded random instances:
//!
//! * the **incremental** engine (`PaymentStrategy::Incremental`) — the
//!   production path,
//! * the **naive** per-winner re-solve (`PaymentStrategy::Naive`) — the
//!   reference the incremental engine must match *bit for bit*, welfares
//!   and payments alike,
//! * an independent **brute-force oracle** (subset enumeration, shares no
//!   code with `auction`) — matched within float tolerance wherever the
//!   underlying solver is exact, so the two engines cannot drift together.
//!
//! Weights and costs are drawn from continuous ranges, so distinct subsets
//! never tie in welfare and each instance's optimal selection is unique —
//! exactly the regime the bit-identity contract is defined over.

use auction::bid::Bid;
use auction::pivots::{leave_one_out_welfares_on, PaymentStrategy};
use auction::valuation::{ClientValue, Valuation};
use auction::vcg::{VcgAuction, VcgConfig};
use auction::wdp::{solve, SolverKind, WdpInstance, WdpItem};
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};

fn random_items(rng: &mut StdRng, n: usize) -> Vec<WdpItem> {
    (0..n)
        .map(|i| WdpItem {
            bidder: i,
            weight: rng.random_range(-3.0..9.0),
            cost: rng.random_range(0.01..4.0),
        })
        .collect()
}

/// Independent oracle: best objective over all subsets, constraints applied
/// from the problem statement.
fn oracle_best(items: &[WdpItem], max_winners: Option<usize>, budget: Option<f64>) -> f64 {
    let n = items.len();
    assert!(n <= 14, "oracle limited to 14 items");
    let mut best = 0.0f64;
    for mask in 0u32..(1u32 << n) {
        if let Some(k) = max_winners {
            if mask.count_ones() as usize > k {
                continue;
            }
        }
        let (mut cost, mut obj) = (0.0, 0.0);
        for (i, it) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                cost += it.cost;
                obj += it.weight;
            }
        }
        if let Some(b) = budget {
            if cost > b + 1e-9 {
                continue;
            }
        }
        if obj > best {
            best = obj;
        }
    }
    best
}

fn oracle_loo(items: &[WdpItem], target: usize, k: Option<usize>, b: Option<f64>) -> f64 {
    let reduced: Vec<WdpItem> = items
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != target)
        .map(|(_, &it)| it)
        .collect();
    oracle_best(&reduced, k, b)
}

/// Runs both engines on every selected winner of `inst` and asserts
/// bit-identical welfare vectors; returns them for further checks.
fn assert_engines_bit_identical(
    inst: &WdpInstance,
    kind: SolverKind,
    context: &str,
) -> (Vec<usize>, Vec<f64>) {
    let sol = solve(inst, kind);
    let pool = par::Pool::serial();
    let naive = leave_one_out_welfares_on(inst, &sol.selected, kind, PaymentStrategy::Naive, pool);
    let incremental = leave_one_out_welfares_on(
        inst,
        &sol.selected,
        kind,
        PaymentStrategy::Incremental,
        pool,
    );
    assert_eq!(naive.len(), incremental.len(), "{context}: length");
    for (w, (ni, ii)) in sol.selected.iter().zip(naive.iter().zip(&incremental)) {
        assert_eq!(
            ni.to_bits(),
            ii.to_bits(),
            "{context}: W*₋ᵢ for item {w} — naive {ni} vs incremental {ii}"
        );
    }
    (sol.selected, naive)
}

fn build(items: Vec<WdpItem>, k: Option<usize>, b: Option<f64>) -> WdpInstance {
    let mut inst = WdpInstance::new(items);
    if let Some(k) = k {
        inst = inst.with_max_winners(k);
    }
    if let Some(b) = b {
        inst = inst.with_budget(b);
    }
    inst
}

/// No-budget combos (unconstrained and top-K) under the exact dispatch:
/// 80 instances spanning n = 2..50.
#[test]
fn topk_combos_bit_identical_and_oracle_checked() {
    let mut rng = StdRng::seed_from_u64(0x71C0_0001);
    let mut checked = 0usize;
    for round in 0..40 {
        let n = rng.random_range(2..50usize);
        let items = random_items(&mut rng, n);
        let k = rng.random_range(1..=n);
        for combo in [None, Some(k)] {
            let inst = build(items.clone(), combo, None);
            let (selected, welfares) = assert_engines_bit_identical(
                &inst,
                SolverKind::Exact,
                &format!("topk round {round} n {n} k {combo:?}"),
            );
            // Oracle cross-check on instances small enough to enumerate.
            if n <= 12 {
                for (&t, &w) in selected.iter().zip(&welfares) {
                    let expect = oracle_loo(&items, t, combo, None);
                    assert!(
                        (w - expect).abs() < 1e-9,
                        "oracle disagrees: round {round} target {t}: {w} vs {expect}"
                    );
                }
            }
            checked += 1;
        }
    }
    assert_eq!(checked, 80);
}

/// Budgeted combos under the exact (exhaustive-dispatch) solver at oracle
/// sizes: the incremental strategy must track the naive one bit for bit
/// through its fallback, and both must track the independent oracle.
#[test]
fn small_budgeted_combos_bit_identical_and_oracle_checked() {
    let mut rng = StdRng::seed_from_u64(0x71C0_0002);
    let mut checked = 0usize;
    for round in 0..30 {
        let n = rng.random_range(2..=12usize);
        let items = random_items(&mut rng, n);
        let k = rng.random_range(1..=n);
        let budget = rng.random_range(0.2..10.0);
        for combo in [(None, Some(budget)), (Some(k), Some(budget))] {
            let inst = build(items.clone(), combo.0, combo.1);
            let (selected, welfares) = assert_engines_bit_identical(
                &inst,
                SolverKind::Exact,
                &format!("small budget round {round} n {n} combo {combo:?}"),
            );
            for (&t, &w) in selected.iter().zip(&welfares) {
                let expect = oracle_loo(&items, t, combo.0, combo.1);
                assert!(
                    (w - expect).abs() < 1e-9,
                    "oracle disagrees: round {round} target {t}: {w} vs {expect}"
                );
            }
            checked += 1;
        }
    }
    assert_eq!(checked, 60);
}

/// Budgeted combos on the knapsack DP at sizes from trivial to well past
/// the exhaustive-dispatch boundary, across a spread of grid resolutions:
/// this is the forward/backward merge engine's main workout. 120 instances.
#[test]
fn knapsack_combos_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x71C0_0003);
    let mut checked = 0usize;
    for round in 0..60 {
        let n = rng.random_range(3..56usize);
        let items = random_items(&mut rng, n);
        let k = rng.random_range(1..10usize);
        let budget = rng.random_range(0.5..20.0);
        let grid = rng.random_range(48..600usize);
        let kind = SolverKind::Knapsack { grid };
        for combo in [(None, Some(budget)), (Some(k), Some(budget))] {
            let inst = build(items.clone(), combo.0, combo.1);
            assert_engines_bit_identical(
                &inst,
                kind,
                &format!("knapsack round {round} n {n} grid {grid} combo {combo:?}"),
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 120);
}

/// `Exact` dispatch above the exhaustive boundary (n > 26): the production
/// path `run_with_budget` takes — full instance and every reduced instance
/// are knapsack-solved at grid 4000.
#[test]
fn exact_dispatch_large_budgeted_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x71C0_0004);
    for &n in &[27usize, 34, 48] {
        let items = random_items(&mut rng, n);
        let budget = rng.random_range(4.0..25.0);
        for combo in [(None, Some(budget)), (Some(6), Some(budget))] {
            let inst = build(items.clone(), combo.0, combo.1);
            assert_engines_bit_identical(
                &inst,
                SolverKind::Exact,
                &format!("exact-dispatch n {n} combo {combo:?}"),
            );
        }
    }
}

/// End-to-end through the auction: `run_with_budget_strategy_on` must hand
/// out bit-identical payments (not just welfares) under both strategies, on
/// both worker counts.
#[test]
fn vcg_payments_bit_identical_across_strategies() {
    let valuation = Valuation::Linear(ClientValue {
        value_per_unit: 0.05,
        base_value: 0.3,
    });
    let mut rng = StdRng::seed_from_u64(0x71C0_0005);
    for round in 0..12 {
        let n = rng.random_range(28..60usize);
        let bids: Vec<Bid> = (0..n)
            .map(|i| {
                Bid::new(
                    i,
                    rng.random_range(0.1..3.0),
                    rng.random_range(40..400usize),
                    rng.random_range(0.4..1.0),
                )
            })
            .collect();
        let auction = VcgAuction::new(VcgConfig {
            value_weight: rng.random_range(5.0..60.0),
            cost_weight: rng.random_range(0.5..6.0),
            max_winners: None,
            ..VcgConfig::default()
        });
        let budget = rng.random_range(0.2..0.6) * bids.iter().map(|b| b.cost).sum::<f64>();
        for pool in [par::Pool::serial(), par::Pool::with_threads(4)] {
            let naive = auction.run_with_budget_strategy_on(
                &bids,
                &valuation,
                budget,
                SolverKind::Exact,
                PaymentStrategy::Naive,
                pool,
            );
            let incremental = auction.run_with_budget_strategy_on(
                &bids,
                &valuation,
                budget,
                SolverKind::Exact,
                PaymentStrategy::Incremental,
                pool,
            );
            assert!(
                !naive.winners.is_empty(),
                "degenerate instance, round {round}"
            );
            assert_eq!(
                naive.virtual_welfare.to_bits(),
                incremental.virtual_welfare.to_bits(),
                "welfare diverged, round {round}"
            );
            assert_eq!(naive.winners.len(), incremental.winners.len());
            for (a, b) in naive.winners.iter().zip(&incremental.winners) {
                assert_eq!(a.bidder, b.bidder, "winner set diverged, round {round}");
                assert_eq!(
                    a.payment.to_bits(),
                    b.payment.to_bits(),
                    "payment of bidder {} diverged, round {round}",
                    a.bidder
                );
            }
        }
    }
}

/// The no-budget auction path (`run_with_strategy_on`) is likewise
/// strategy-invariant, including under a reserve price.
#[test]
fn vcg_topk_payments_bit_identical_across_strategies() {
    let valuation = Valuation::default();
    let mut rng = StdRng::seed_from_u64(0x71C0_0006);
    for round in 0..20 {
        let n = rng.random_range(2..40usize);
        let bids: Vec<Bid> = (0..n)
            .map(|i| {
                Bid::new(
                    i,
                    rng.random_range(0.1..3.0),
                    rng.random_range(40..400usize),
                    rng.random_range(0.4..1.0),
                )
            })
            .collect();
        let auction = VcgAuction::new(VcgConfig {
            value_weight: 40.0,
            cost_weight: 4.0,
            max_winners: Some(rng.random_range(1..12usize)),
            reserve_price: if rng.random() { Some(2.0) } else { None },
            ..VcgConfig::default()
        });
        let naive = auction.run_with_strategy_on(
            &bids,
            &valuation,
            PaymentStrategy::Naive,
            par::Pool::serial(),
        );
        let incremental = auction.run_with_strategy_on(
            &bids,
            &valuation,
            PaymentStrategy::Incremental,
            par::Pool::serial(),
        );
        assert_eq!(naive.winners.len(), incremental.winners.len());
        for (a, b) in naive.winners.iter().zip(&incremental.winners) {
            assert_eq!(a.bidder, b.bidder, "winner set diverged, round {round}");
            assert_eq!(
                a.payment.to_bits(),
                b.payment.to_bits(),
                "payment of bidder {} diverged, round {round}",
                a.bidder
            );
        }
        // The default path is the incremental one.
        let default_run = auction.run(&bids, &valuation);
        assert_eq!(
            default_run, incremental,
            "run() default diverged, round {round}"
        );
    }
}
