//! Differential suite: the arena-backed solver ([`SolverArena`]) must be
//! **bit-identical** to the legacy allocating path ([`solve_view`]) — same
//! selected indices, same `objective` bits — on every instance, every
//! constraint combination, and every solver kind, with ONE warm arena
//! reused across the whole sweep (so buffer-reuse bugs, stale traceback
//! bits, and under-cleared scratch all surface here).
//!
//! Payments are computed from these objectives, so "close" is not good
//! enough: a one-ULP drift in a leave-one-out welfare is a payment change.
//! Instance sizes straddle every dispatch boundary in `solve_view_into`
//! (exhaustive below 25 budgeted items, knapsack above, top-K when
//! unconstrained by budget).

use auction::wdp::{solve_view, SolverArena, SolverKind, WdpInstance, WdpItem, WdpView};
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};

fn build(items: Vec<WdpItem>, max_winners: Option<usize>, budget: Option<f64>) -> WdpInstance {
    let mut inst = WdpInstance::new(items);
    if let Some(k) = max_winners {
        inst = inst.with_max_winners(k);
    }
    if let Some(b) = budget {
        inst = inst.with_budget(b);
    }
    inst
}

fn random_items(rng: &mut StdRng, n: usize) -> Vec<WdpItem> {
    (0..n)
        .map(|i| WdpItem {
            bidder: i,
            weight: rng.random_range(-5.0..10.0),
            cost: rng.random_range(0.0..5.0),
        })
        .collect()
}

fn assert_bit_identical(
    legacy: &auction::wdp::WdpSolution,
    arena: &auction::wdp::WdpSolution,
    ctx: &str,
) {
    assert_eq!(legacy.selected, arena.selected, "selection diverged: {ctx}");
    assert_eq!(
        legacy.objective.to_bits(),
        arena.objective.to_bits(),
        "objective bits diverged ({} vs {}): {ctx}",
        legacy.objective,
        arena.objective
    );
}

/// 200 seeded instances × 4 constraint combos × 2 solver kinds, one arena
/// for the entire sweep. Sizes 1..=120 cross the exhaustive/knapsack
/// dispatch boundary (25) and force multi-word traceback rows.
#[test]
fn arena_bit_identical_to_legacy_across_combos() {
    let mut rng = StdRng::seed_from_u64(0xA2E4_A0001);
    let mut arena = SolverArena::new();
    let mut checked = 0usize;
    for round in 0..200 {
        // Skip the 13..=25 band: budgeted Exact dispatches it to the
        // *shared* exhaustive enumerator (2^n subsets — slow and with no
        // arena-vs-legacy divergence possible), so spend the budget on the
        // knapsack band where the arena actually has its own code path.
        let n = if round % 4 == 0 {
            rng.random_range(1..=12usize)
        } else {
            rng.random_range(26..=96usize)
        };
        let items = random_items(&mut rng, n);
        let k = rng.random_range(1..=n.max(1));
        let budget = rng.random_range(0.0..20.0);
        let combos = [
            (None, None),
            (Some(k), None),
            (None, Some(budget)),
            (Some(k), Some(budget)),
        ];
        for (k, b) in combos {
            let inst = build(items.clone(), k, b);
            let view = WdpView::full(&inst);
            for kind in [SolverKind::Exact, SolverKind::Knapsack { grid: 1000 }] {
                let legacy = solve_view(&view, kind);
                let fast = arena.solve_view(&view, kind);
                let ctx = format!("round={round} n={n} k={k:?} b={b:?} kind={kind:?}");
                assert_bit_identical(&legacy, &fast, &ctx);
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 200 * 4 * 2);
}

/// Subset views (the sharded path's geometry): the arena must honor the
/// view's index remapping, not assume 0..n.
#[test]
fn arena_matches_legacy_on_subset_views() {
    let mut rng = StdRng::seed_from_u64(0xA2E4_A0002);
    let mut arena = SolverArena::new();
    for round in 0..60 {
        // Alternate tiny exhaustive-band views with wide knapsack-band
        // ones; the 13..=25 band is the shared 2^n enumerator (no arena
        // code, and slow), so it gets no budget here either.
        let (n, step) = if round % 3 == 0 {
            (rng.random_range(6..=24usize), 3)
        } else {
            (rng.random_range(60..=160usize), 2)
        };
        let items = random_items(&mut rng, n);
        let budget = rng.random_range(0.0..15.0);
        let inst = build(items, Some(n / 2 + 1), Some(budget));
        // A deliberately sparse, non-contiguous subset.
        let subset: Vec<usize> = (0..n).step_by(step).collect();
        let view = WdpView::of_subset(&inst, &subset);
        for kind in [SolverKind::Exact, SolverKind::Knapsack { grid: 2000 }] {
            let legacy = solve_view(&view, kind);
            let fast = arena.solve_view(&view, kind);
            let ctx = format!("round={round} n={n} subset kind={kind:?}");
            assert_bit_identical(&legacy, &fast, &ctx);
        }
    }
}

/// Warm-arena order independence: solving a LARGE instance then a small one
/// must not leak the large instance's DP tail or traceback bits into the
/// small solve. (This is the classic reuse bug: `resize` without `clear`.)
#[test]
fn arena_shrinking_instances_do_not_leak_state() {
    let mut rng = StdRng::seed_from_u64(0xA2E4_A0003);
    let mut arena = SolverArena::new();
    // Prime the arena with a big budgeted solve.
    let big_items = random_items(&mut rng, 150);
    let big = build(big_items, Some(40), Some(30.0));
    let _ = arena.solve_view(&WdpView::full(&big), SolverKind::Exact);
    // Now a descending ladder of small instances, fresh-vs-warm.
    for n in [64usize, 31, 26, 12, 5, 1] {
        let items = random_items(&mut rng, n);
        let inst = build(items, Some(n), Some(4.0));
        let view = WdpView::full(&inst);
        for kind in [SolverKind::Exact, SolverKind::Knapsack { grid: 500 }] {
            let legacy = solve_view(&view, kind);
            let warm = arena.solve_view(&view, kind);
            let mut fresh_arena = SolverArena::new();
            let fresh = fresh_arena.solve_view(&view, kind);
            assert_bit_identical(&legacy, &warm, &format!("warm n={n} kind={kind:?}"));
            assert_bit_identical(&legacy, &fresh, &format!("fresh n={n} kind={kind:?}"));
        }
    }
}

/// The non-hot kinds (Exhaustive, GreedyDensity) route through the legacy
/// solver inside the arena; pin that they stay identical too.
#[test]
fn arena_delegated_kinds_match() {
    let mut rng = StdRng::seed_from_u64(0xA2E4_A0004);
    let mut arena = SolverArena::new();
    for _ in 0..30 {
        let n = rng.random_range(1..=10usize);
        let items = random_items(&mut rng, n);
        let inst = build(items, Some(n), Some(6.0));
        let view = WdpView::full(&inst);
        for kind in [SolverKind::Exhaustive, SolverKind::GreedyDensity] {
            let legacy = solve_view(&view, kind);
            let fast = arena.solve_view(&view, kind);
            assert_bit_identical(&legacy, &fast, &format!("n={n} kind={kind:?}"));
        }
    }
}
