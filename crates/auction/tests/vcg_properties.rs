//! Property-style tests for the VCG auction on random small instances.
//!
//! Procurement conventions: clients *report costs* and are *paid*; the
//! forward-auction guarantee "a winner never pays more than their bid"
//! becomes "a winner is never paid less than their reported cost" (IR).

use auction::bid::Bid;
use auction::valuation::{ClientValue, Valuation};
use auction::vcg::{VcgAuction, VcgConfig};
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};

fn random_bids(rng: &mut StdRng, n: usize) -> Vec<Bid> {
    (0..n)
        .map(|i| {
            Bid::new(
                i,
                rng.random_range(0.05..5.0),
                rng.random_range(1..50usize),
                rng.random_range(0.1..1.0),
            )
        })
        .collect()
}

#[test]
fn vcg_payments_bounded_and_winners_from_bidder_set() {
    let mut rng = StdRng::seed_from_u64(0x7C61);
    for round in 0..300 {
        let n = rng.random_range(1..12usize);
        let bids = random_bids(&mut rng, n);
        let valuation = Valuation::Linear(ClientValue {
            value_per_unit: rng.random_range(0.05..1.0),
            base_value: rng.random_range(0.0..2.0),
        });
        let auction = VcgAuction::new(VcgConfig {
            value_weight: rng.random_range(1.0..30.0),
            cost_weight: rng.random_range(0.5..5.0),
            max_winners: Some(rng.random_range(1..6usize)),
            ..VcgConfig::default()
        });
        let outcome = auction.run(&bids, &valuation);

        let mut seen = std::collections::HashSet::new();
        for w in &outcome.winners {
            // Winners come from the bidder set, each at most once.
            assert!(w.bidder < n, "round {round}: phantom winner {}", w.bidder);
            assert!(seen.insert(w.bidder), "round {round}: duplicate winner");
            // Payments are non-negative and finite.
            assert!(
                w.payment.is_finite() && w.payment >= 0.0,
                "round {round}: bad payment {}",
                w.payment
            );
            // IR: the payment covers the winner's reported cost, so bidding
            // truthfully never loses money (the procurement analogue of
            // "pays at most the bid" in a forward auction).
            assert!(
                w.payment >= bids[w.bidder].cost - 1e-9,
                "round {round}: payment {} below reported cost {}",
                w.payment,
                bids[w.bidder].cost
            );
        }
    }
}

#[test]
fn vcg_respects_winner_cap_and_determinism() {
    let mut rng = StdRng::seed_from_u64(0x7C62);
    for _ in 0..100 {
        let n = rng.random_range(2..10usize);
        let k = rng.random_range(1..4usize);
        let bids = random_bids(&mut rng, n);
        let valuation = Valuation::default();
        let auction = VcgAuction::new(VcgConfig {
            value_weight: 10.0,
            cost_weight: 2.0,
            max_winners: Some(k),
            ..VcgConfig::default()
        });
        let a = auction.run(&bids, &valuation);
        let b = auction.run(&bids, &valuation);
        assert!(a.winners.len() <= k);
        // Same inputs, same outcome: the auction itself is deterministic.
        assert_eq!(a.winner_ids(), b.winner_ids());
        assert_eq!(a.total_payment(), b.total_payment());
    }
}
