//! Steady-state allocation audit for the arena-backed solver.
//!
//! A counting `#[global_allocator]` wraps `System` and tallies every
//! `alloc`/`realloc`. The test drives a 100-round streamed-style loop —
//! solve + leave-one-out pivot welfares each round, exactly what a sealed
//! LOVM round does — through one persistent [`SolverArena`] on a serial
//! pool, and asserts the allocation counter does not move at all after
//! warm-up. This is the reuse contract the hot path is built on: if a
//! future edit sneaks a `Vec::new()`/`clone()` back into the per-round
//! solver, this test fails with the exact round that allocated.
//!
//! The zero-allocation guarantee is a *serial* contract (`LOVM_THREADS=1`):
//! parallel pools spawn scoped workers with per-worker arenas (correctness,
//! not allocation-freedom). This file is its own crate, so the counting
//! allocator cannot perturb any other test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use auction::pivots::{leave_one_out_welfares_view_into, PaymentStrategy};
use auction::wdp::{SolverArena, SolverKind, WdpInstance, WdpItem, WdpSolution, WdpView};

fn instance(n: usize, budget: Option<f64>, seed: u64) -> WdpInstance {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let items: Vec<WdpItem> = (0..n)
        .map(|i| WdpItem {
            bidder: i,
            weight: next() * 12.0 - 3.0,
            cost: next() * 4.0,
        })
        .collect();
    let mut inst = WdpInstance::new(items).with_max_winners(n / 3 + 1);
    if let Some(b) = budget {
        inst = inst.with_budget(b);
    }
    inst
}

/// One sealed round's worth of solver work: winner determination plus all
/// Clarke-pivot leave-one-out welfares, everything written into persistent
/// buffers.
fn run_round(
    view: &WdpView<'_>,
    kind: SolverKind,
    arena: &mut SolverArena,
    solution: &mut WdpSolution,
    welfares: &mut Vec<f64>,
) {
    let pool = par::Pool::serial();
    arena.solve_view_into(view, kind, solution);
    leave_one_out_welfares_view_into(
        view,
        &solution.selected,
        kind,
        PaymentStrategy::Incremental,
        pool,
        arena,
        welfares,
    );
}

/// 100-round streamed loop over budgeted knapsack rounds (n = 80 keeps the
/// budgeted Exact dispatch on the arena DP, not the exhaustive enumerator)
/// interleaved with top-K rounds: zero allocations after warm-up — first
/// with telemetry disabled, then again with it force-enabled. Recording
/// into the preallocated histograms must be as allocation-free as not
/// recording at all (handle registration allocates once, in the warm-up).
#[test]
fn streamed_rounds_allocate_nothing_after_warmup() {
    // All instances are built BEFORE measurement; rounds only read them.
    let budgeted = instance(80, Some(12.0), 0xFEED_0001);
    let budgeted_small = instance(48, Some(5.0), 0xFEED_0002);
    let topk = instance(96, None, 0xFEED_0003);
    let views = [
        WdpView::full(&budgeted),
        WdpView::full(&budgeted_small),
        WdpView::full(&topk),
    ];
    let kinds = [
        SolverKind::Exact,
        SolverKind::Knapsack { grid: 2000 },
        SolverKind::Exact,
    ];

    let mut arena = SolverArena::new();
    let mut solution = WdpSolution::default();
    let mut welfares: Vec<f64> = Vec::new();

    // Warm-up: every (view, kind) pairing once, so all arena lanes, the
    // traceback table, snapshot planes, and output buffers reach their
    // high-water capacity.
    for (view, kind) in views.iter().zip(kinds) {
        run_round(view, kind, &mut arena, &mut solution, &mut welfares);
    }

    let mut last_objective = 0u64;
    for phase in ["telemetry-off", "telemetry-on"] {
        if phase == "telemetry-on" {
            // Enabled-mode recording must stay on the zero-allocation
            // budget: histogram buckets are preallocated and the handle
            // caches are `&'static`. The re-warm-up below pays the
            // one-time registration allocations.
            telemetry::force_configure(true, telemetry::SinkSpec::None);
            for (view, kind) in views.iter().zip(kinds) {
                run_round(view, kind, &mut arena, &mut solution, &mut welfares);
            }
        }
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        for round in 0..100 {
            let i = round % views.len();
            run_round(
                &views[i],
                kinds[i],
                &mut arena,
                &mut solution,
                &mut welfares,
            );
            // Consume the outputs so the solves cannot be optimized away
            // (the rotate keeps identical passes from cancelling to 0).
            last_objective = last_objective.rotate_left(1) ^ solution.objective.to_bits();
            last_objective ^= welfares.iter().map(|w| w.to_bits()).fold(0, |a, b| a ^ b);
            let now = ALLOC_CALLS.load(Ordering::Relaxed);
            assert_eq!(
                now,
                before,
                "{phase} round {round} allocated ({} calls) — arena reuse \
                 contract broken",
                now - before
            );
        }
    }
    assert_ne!(last_objective, 0, "solves produced no output?");
}

/// The warm arena still produces bit-identical answers — the allocation
/// audit must not be satisfied by caching stale results.
#[test]
fn warm_solver_output_stays_correct() {
    let inst = instance(64, Some(9.0), 0xFEED_0004);
    let view = WdpView::full(&inst);
    let mut arena = SolverArena::new();
    let mut solution = WdpSolution::default();
    let mut welfares: Vec<f64> = Vec::new();
    let mut reference: Option<(Vec<usize>, u64, Vec<u64>)> = None;
    for _ in 0..10 {
        run_round(
            &view,
            SolverKind::Exact,
            &mut arena,
            &mut solution,
            &mut welfares,
        );
        let snap = (
            solution.selected.clone(),
            solution.objective.to_bits(),
            welfares.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
        );
        match &reference {
            None => reference = Some(snap),
            Some(r) => assert_eq!(*r, snap, "warm solve diverged from first solve"),
        }
    }
}
