//! Brute-force oracle tests for the WDP solvers.
//!
//! An independent subset-enumeration oracle (written against the problem
//! statement, sharing no code with `auction::wdp`) is compared against the
//! exact solvers on every instance with ≤ 12 items, across all four
//! constraint combinations: unconstrained, cardinality cap only, budget cap
//! only, and both. On these sizes `SolverKind::Exact` must be *exactly*
//! optimal — the budgeted dispatch goes through exhaustive search below 25
//! items, so no knapsack grid tolerance applies.

use auction::wdp::{solve, SolverKind, WdpInstance, WdpItem};
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};

/// Independent oracle: enumerate all 2^n subsets, apply the constraints
/// from first principles, and return the best objective (empty set = 0).
fn oracle_best(items: &[WdpItem], max_winners: Option<usize>, budget: Option<f64>) -> f64 {
    let n = items.len();
    assert!(n <= 12, "oracle limited to 12 items");
    let mut best = 0.0f64;
    for mask in 0u32..(1u32 << n) {
        if let Some(k) = max_winners {
            if mask.count_ones() as usize > k {
                continue;
            }
        }
        let mut cost = 0.0;
        let mut obj = 0.0;
        for (i, it) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                cost += it.cost;
                obj += it.weight;
            }
        }
        if let Some(b) = budget {
            if cost > b + 1e-9 {
                continue;
            }
        }
        if obj > best {
            best = obj;
        }
    }
    best
}

fn build(items: Vec<WdpItem>, max_winners: Option<usize>, budget: Option<f64>) -> WdpInstance {
    let mut inst = WdpInstance::new(items);
    if let Some(k) = max_winners {
        inst = inst.with_max_winners(k);
    }
    if let Some(b) = budget {
        inst = inst.with_budget(b);
    }
    inst
}

fn random_items(rng: &mut StdRng, n: usize) -> Vec<WdpItem> {
    (0..n)
        .map(|i| WdpItem {
            bidder: i,
            weight: rng.random_range(-5.0..10.0),
            cost: rng.random_range(0.0..5.0),
        })
        .collect()
}

/// All four constraint combinations for one item set and RNG draw.
fn constraint_combos(rng: &mut StdRng, n: usize) -> [(Option<usize>, Option<f64>); 4] {
    let k = rng.random_range(1..=n.max(1));
    let budget = rng.random_range(0.0..15.0);
    [
        (None, None),
        (Some(k), None),
        (None, Some(budget)),
        (Some(k), Some(budget)),
    ]
}

/// `SolverKind::Exact` matches the oracle objective exactly on every
/// constraint combination, and its selection is feasible and consistent.
#[test]
fn exact_solver_matches_oracle_on_all_constraint_combos() {
    let mut rng = StdRng::seed_from_u64(0x0AC1E);
    let mut checked = 0usize;
    for _ in 0..120 {
        let n = rng.random_range(1..=12usize);
        let items = random_items(&mut rng, n);
        for (k, b) in constraint_combos(&mut rng, n) {
            let inst = build(items.clone(), k, b);
            let expect = oracle_best(&items, k, b);
            let sol = solve(&inst, SolverKind::Exact);
            assert!(
                (sol.objective - expect).abs() < 1e-9,
                "exact {} vs oracle {expect} (n={n}, k={k:?}, b={b:?})",
                sol.objective
            );
            assert!(inst.feasible(&sol.selected), "infeasible selection");
            assert!(
                (inst.objective(&sol.selected) - sol.objective).abs() < 1e-12,
                "reported objective inconsistent with selection"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 480);
}

/// `SolverKind::Exhaustive` (the in-crate brute force) agrees with the
/// independent oracle — guards against both drifting together is impossible,
/// but this catches the in-crate one drifting alone.
#[test]
fn exhaustive_solver_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(0xE40AC1E);
    for _ in 0..120 {
        let n = rng.random_range(1..=12usize);
        let items = random_items(&mut rng, n);
        for (k, b) in constraint_combos(&mut rng, n) {
            let inst = build(items.clone(), k, b);
            let expect = oracle_best(&items, k, b);
            let sol = solve(&inst, SolverKind::Exhaustive);
            assert!(
                (sol.objective - expect).abs() < 1e-9,
                "exhaustive {} vs oracle {expect} (n={n}, k={k:?}, b={b:?})",
                sol.objective
            );
        }
    }
}

/// The knapsack DP with a fine grid stays within a sliver of the oracle on
/// budgeted instances (its only approximation is cost-grid rounding) and is
/// always feasible. With no budget it must be exact (top-K dispatch).
#[test]
fn knapsack_tracks_oracle_within_grid_tolerance() {
    let mut rng = StdRng::seed_from_u64(0x5ACC);
    for _ in 0..120 {
        let n = rng.random_range(1..=12usize);
        let items = random_items(&mut rng, n);
        for (k, b) in constraint_combos(&mut rng, n) {
            let inst = build(items.clone(), k, b);
            let expect = oracle_best(&items, k, b);
            let sol = solve(&inst, SolverKind::Knapsack { grid: 4000 });
            assert!(inst.feasible(&sol.selected));
            assert!(
                sol.objective <= expect + 1e-9,
                "knapsack {} beats oracle {expect}?!",
                sol.objective
            );
            // Floor rounding can admit a pack that overshoots the true
            // budget, and the repair pass then drops a whole (lowest-
            // density) item — so the loss scales with the optimum, not
            // with the grid cell.
            let tol = if b.is_some() {
                0.05 * expect.max(2.0)
            } else {
                1e-9
            };
            assert!(
                sol.objective >= expect - tol,
                "knapsack {} vs oracle {expect} (n={n}, k={k:?}, b={b:?})",
                sol.objective
            );
        }
    }
}

/// Structured corner cases the random sweep is unlikely to hit exactly.
#[test]
fn oracle_agrees_on_corner_cases() {
    let item = |w: f64, c: f64| WdpItem {
        bidder: 0,
        weight: w,
        cost: c,
    };
    // All-negative weights: optimum is the empty set under every combo.
    let negs = vec![item(-1.0, 1.0), item(-0.5, 0.0), item(-3.0, 2.0)];
    for (k, b) in [
        (None, None),
        (Some(2), None),
        (None, Some(1.0)),
        (Some(1), Some(1.0)),
    ] {
        let inst = build(negs.clone(), k, b);
        assert_eq!(solve(&inst, SolverKind::Exact).objective, 0.0);
        assert_eq!(oracle_best(&negs, k, b), 0.0);
        assert!(solve(&inst, SolverKind::Exact).selected.is_empty());
    }
    // Zero budget admits only zero-cost items.
    let mixed = vec![item(5.0, 1.0), item(2.0, 0.0), item(1.0, 0.0)];
    let inst = build(mixed.clone(), None, Some(0.0));
    let sol = solve(&inst, SolverKind::Exact);
    assert_eq!(sol.objective, oracle_best(&mixed, None, Some(0.0)));
    assert_eq!(sol.objective, 3.0);
    // Cardinality cap of zero forces the empty set even with great items.
    let great = vec![item(10.0, 0.1), item(9.0, 0.1)];
    let inst = build(great.clone(), Some(0), None);
    assert_eq!(solve(&inst, SolverKind::Exact).objective, 0.0);
    assert_eq!(oracle_best(&great, Some(0), None), 0.0);
    // Budget exactly equal to the best pack's cost: boundary is feasible.
    let tight = vec![item(4.0, 2.0), item(3.0, 3.0), item(1.0, 4.0)];
    let inst = build(tight.clone(), None, Some(5.0));
    let sol = solve(&inst, SolverKind::Exact);
    assert_eq!(sol.objective, 7.0);
    assert_eq!(oracle_best(&tight, None, Some(5.0)), 7.0);
}
