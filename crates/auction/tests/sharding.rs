//! Property suite for the sharded market engine (`auction::shard`).
//!
//! Two contracts:
//!
//! * **Degenerate exactness** — `Sharded { count: 1 }` is *bit-identical*
//!   to the monolithic path (winners, payments, welfare) across all four
//!   constraint combos (cap × budget), so every existing differential and
//!   golden guarantee carries over to the sharded configuration surface.
//!   For no-budget (top-K) rounds the same holds at *any* shard count.
//! * **Bounded welfare gap** — budgeted sharded rounds achieve at least
//!   `(1 − ε)` of the monolithic welfare on ~100 seeded instances; the
//!   measured `ε` is printed by the test so the bound is an observation,
//!   not a guess.

use auction::bid::Bid;
use auction::shard::MarketTopology;
use auction::valuation::Valuation;
use auction::vcg::{VcgAuction, VcgConfig};
use auction::wdp::SolverKind;
use auction::AuctionOutcome;
use simrng::rngs::StdRng;
use simrng::{RngExt, SeedableRng};

fn random_bids(rng: &mut StdRng, n: usize) -> Vec<Bid> {
    (0..n)
        .map(|i| {
            Bid::new(
                i,
                rng.random_range(0.2..3.0),
                rng.random_range(50..500),
                rng.random_range(0.5..1.0),
            )
        })
        .collect()
}

fn assert_outcomes_bit_identical(a: &AuctionOutcome, b: &AuctionOutcome, context: &str) {
    assert_eq!(
        a.virtual_welfare.to_bits(),
        b.virtual_welfare.to_bits(),
        "{context}: welfare differs ({} vs {})",
        a.virtual_welfare,
        b.virtual_welfare
    );
    assert_eq!(a.winners.len(), b.winners.len(), "{context}: winner count");
    for (x, y) in a.winners.iter().zip(&b.winners) {
        assert_eq!(x.bidder, y.bidder, "{context}: winner set");
        assert_eq!(
            x.payment.to_bits(),
            y.payment.to_bits(),
            "{context}: payment of bidder {}",
            x.bidder
        );
    }
}

fn auction_with(topology: MarketTopology, max_winners: Option<usize>) -> VcgAuction {
    VcgAuction::new(VcgConfig {
        value_weight: 20.0,
        cost_weight: 2.0,
        max_winners,
        topology,
        ..VcgConfig::default()
    })
}

/// `Sharded{1}` must take exactly the monolithic code path: bit-identical
/// winners, payments, and welfare across all four constraint combos
/// (cap? × budget?), at 1 and 4 workers.
#[test]
fn sharded_one_bit_identical_to_monolithic_all_combos() {
    let valuation = Valuation::default();
    let mut rng = StdRng::seed_from_u64(0x0114_E401);
    for round in 0..25 {
        let n = rng.random_range(4..60usize);
        let bids = random_bids(&mut rng, n);
        let budget = rng.random_range(0.05..0.5) * bids.iter().map(|b| b.cost).sum::<f64>();
        for cap in [None, Some(rng.random_range(1..8usize))] {
            for use_budget in [false, true] {
                for pool in [par::Pool::serial(), par::Pool::with_threads(4)] {
                    let mono = auction_with(MarketTopology::Monolithic, cap);
                    let one = auction_with(MarketTopology::Sharded { count: 1 }, cap);
                    let (a, b) = if use_budget {
                        let kind = SolverKind::Knapsack { grid: 512 };
                        (
                            mono.run_with_budget_on(&bids, &valuation, budget, kind, pool),
                            one.run_with_budget_on(&bids, &valuation, budget, kind, pool),
                        )
                    } else {
                        (
                            mono.run_with_strategy_on(
                                &bids,
                                &valuation,
                                auction::PaymentStrategy::Incremental,
                                pool,
                            ),
                            one.run_with_strategy_on(
                                &bids,
                                &valuation,
                                auction::PaymentStrategy::Incremental,
                                pool,
                            ),
                        )
                    };
                    assert_outcomes_bit_identical(
                        &a,
                        &b,
                        &format!(
                            "round {round} cap {cap:?} budget {use_budget} threads {}",
                            pool.threads()
                        ),
                    );
                }
            }
        }
    }
}

/// The stronger top-K claim behind the `LOVM_SHARDS` knob: for no-budget
/// rounds, *every* shard count reproduces the monolithic outcome bit for
/// bit — winners, payments, welfare.
#[test]
fn topk_rounds_bit_identical_at_any_shard_count() {
    let valuation = Valuation::default();
    let mut rng = StdRng::seed_from_u64(0x0070_B1D5);
    for round in 0..30 {
        let n = rng.random_range(6..150usize);
        let bids = random_bids(&mut rng, n);
        for cap in [None, Some(rng.random_range(1..15usize))] {
            let mono = auction_with(MarketTopology::Monolithic, cap).run(&bids, &valuation);
            for count in [2usize, 5, 16, 64] {
                let sharded =
                    auction_with(MarketTopology::Sharded { count }, cap).run(&bids, &valuation);
                assert_outcomes_bit_identical(
                    &mono,
                    &sharded,
                    &format!("round {round} cap {cap:?} shards {count}"),
                );
            }
        }
    }
}

/// Budgeted sharded rounds: welfare within `(1 − ε)` of monolithic over
/// ~100 seeded instances (cap and no-cap variants), with the measured
/// worst-case `ε` printed. The budget is tight enough to bind inside every
/// shard, which is the regime where champions can actually lose welfare.
#[test]
fn budgeted_sharded_welfare_within_epsilon() {
    let valuation = Valuation::default();
    let mut rng = StdRng::seed_from_u64(0xE145_11A2);
    let kind = SolverKind::Knapsack { grid: 512 };
    let mut worst_eps = 0.0f64;
    let mut rounds = 0usize;
    for _ in 0..50 {
        let n = rng.random_range(60..220usize);
        let bids = random_bids(&mut rng, n);
        let budget = rng.random_range(0.02..0.08) * bids.iter().map(|b| b.cost).sum::<f64>();
        for cap in [None, Some(rng.random_range(4..20usize))] {
            rounds += 1;
            let shards = MarketTopology::Sharded {
                count: rng.random_range(2..9usize),
            };
            let mono = auction_with(MarketTopology::Monolithic, cap)
                .run_with_budget(&bids, &valuation, budget, kind);
            let sharded =
                auction_with(shards, cap).run_with_budget(&bids, &valuation, budget, kind);
            assert!(
                mono.virtual_welfare > 0.0,
                "degenerate instance: zero monolithic welfare"
            );
            let eps = 1.0 - sharded.virtual_welfare / mono.virtual_welfare;
            worst_eps = worst_eps.max(eps);
            assert!(
                eps <= 0.10,
                "sharded welfare {} fell more than 10% below monolithic {}",
                sharded.virtual_welfare,
                mono.virtual_welfare
            );
        }
    }
    println!(
        "sharding welfare gap over {rounds} budgeted instances: measured ε = {worst_eps:.5} \
         (sharded ≥ (1 − ε) · monolithic)"
    );
}
