//! Sealed-round adapter: the bridge between streaming ingestion and the
//! batch auction path.
//!
//! The streaming layer (`crates/ingest`) collects timestamped bid arrivals
//! and, at each round deadline, *seals* the round. A [`SealedRound`] is
//! that frozen snapshot in the canonical form every downstream consumer —
//! the WDP solvers, the VCG payment engines, the sharded market pipeline —
//! already expects: one bid per bidder, **sorted by ascending bidder id**.
//! Ascending bidder order is exactly the order the batch simulator's
//! `round_bids` produces, which is what makes a streamed round with a
//! deadline admitting every arrival *bit-identical* to the batch round: the
//! float-summation order inside the solvers never changes.

use crate::bid::Bid;

/// An immutable, canonically ordered per-round bid vector produced by the
/// ingestion layer at a round deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedRound {
    round: usize,
    bids: Vec<Bid>,
}

impl SealedRound {
    /// Seals a round, sorting bids into canonical ascending-bidder order.
    ///
    /// Duplicate resolution (a deferred bid superseded by a fresh one from
    /// the same bidder) is the collector's job *before* sealing; this
    /// constructor requires the invariant.
    ///
    /// # Panics
    ///
    /// Panics if two bids share a bidder id.
    pub fn new(round: usize, mut bids: Vec<Bid>) -> Self {
        bids.sort_by_key(|b| b.bidder);
        for w in bids.windows(2) {
            assert!(
                w[0].bidder != w[1].bidder,
                "sealed round {round} holds two bids from bidder {}",
                w[0].bidder
            );
        }
        SealedRound { round, bids }
    }

    /// The round index this snapshot belongs to.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The sealed bids in canonical ascending-bidder order — feed this
    /// straight into `VcgAuction::run*` / `Mechanism::select`.
    pub fn bids(&self) -> &[Bid] {
        &self.bids
    }

    /// Number of sealed bids.
    pub fn len(&self) -> usize {
        self.bids.len()
    }

    /// True when the round sealed empty (every arrival was late, shed, or
    /// dropped).
    pub fn is_empty(&self) -> bool {
        self.bids.is_empty()
    }

    /// Consumes the snapshot, returning the owned bid vector.
    pub fn into_bids(self) -> Vec<Bid> {
        self.bids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seals_in_ascending_bidder_order() {
        let sealed = SealedRound::new(
            3,
            vec![
                Bid::new(5, 1.0, 10, 0.5),
                Bid::new(1, 2.0, 20, 0.6),
                Bid::new(9, 0.5, 30, 0.7),
            ],
        );
        assert_eq!(sealed.round(), 3);
        assert_eq!(sealed.len(), 3);
        assert!(!sealed.is_empty());
        let ids: Vec<usize> = sealed.bids().iter().map(|b| b.bidder).collect();
        assert_eq!(ids, vec![1, 5, 9]);
        assert_eq!(sealed.into_bids().len(), 3);
    }

    #[test]
    fn empty_round_is_fine() {
        let sealed = SealedRound::new(0, Vec::new());
        assert!(sealed.is_empty());
        assert_eq!(sealed.bids(), &[]);
    }

    #[test]
    #[should_panic(expected = "two bids from bidder 4")]
    fn rejects_duplicate_bidders() {
        let _ = SealedRound::new(
            0,
            vec![Bid::new(4, 1.0, 10, 0.5), Bid::new(4, 2.0, 20, 0.6)],
        );
    }
}
