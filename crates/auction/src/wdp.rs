//! Winner-determination problem (WDP) solvers.
//!
//! The per-round problem is: given items with *score* `w_i` (already
//! combining platform value and weighted cost, e.g. `w_i = V·v_i − Q·c_i`)
//! and money cost `c_i`, choose a subset maximizing `Σ w_i` subject to an
//! optional cardinality cap and an optional budget cap on `Σ c_i`.
//!
//! Exact solutions are required for VCG truthfulness; this module provides
//! exact solvers for every constraint combination used by LOVM, plus a
//! greedy approximation and a fractional upper bound used by baselines and
//! the experiment harness.

/// One candidate in a winner-determination instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WdpItem {
    /// Stable bidder identifier carried through to the outcome.
    pub bidder: usize,
    /// Selection score (may be negative; negative items are never selected).
    pub weight: f64,
    /// Money cost counted against the budget constraint (must be ≥ 0).
    pub cost: f64,
}

/// A winner-determination instance.
#[derive(Debug, Clone, PartialEq)]
pub struct WdpInstance {
    /// Candidate items.
    pub items: Vec<WdpItem>,
    /// Maximum number of winners (`None` = unlimited).
    pub max_winners: Option<usize>,
    /// Budget cap on total selected cost (`None` = unlimited).
    pub budget: Option<f64>,
}

impl WdpInstance {
    /// Creates an unconstrained instance.
    pub fn new(items: Vec<WdpItem>) -> Self {
        WdpInstance {
            items,
            max_winners: None,
            budget: None,
        }
    }

    /// Adds a cardinality cap.
    pub fn with_max_winners(mut self, k: usize) -> Self {
        self.max_winners = Some(k);
        self
    }

    /// Adds a budget cap.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is negative or non-finite.
    pub fn with_budget(mut self, budget: f64) -> Self {
        assert!(
            budget.is_finite() && budget >= 0.0,
            "budget must be finite and >= 0"
        );
        self.budget = Some(budget);
        self
    }

    /// Objective value of a candidate selection (indices into `items`).
    pub fn objective(&self, selected: &[usize]) -> f64 {
        selected.iter().map(|&i| self.items[i].weight).sum()
    }

    /// Total cost of a candidate selection.
    pub fn total_cost(&self, selected: &[usize]) -> f64 {
        selected.iter().map(|&i| self.items[i].cost).sum()
    }

    /// Whether a selection satisfies both constraints (delegates to the
    /// full view so the comparison logic exists exactly once).
    pub fn feasible(&self, selected: &[usize]) -> bool {
        WdpView::full(self).feasible(selected)
    }

    /// Returns the instance with item `idx` removed (for Clarke pivots).
    ///
    /// This materializes a new `Vec` of items; the hot paths (the naive
    /// pivot engine, the shard pipeline) use the allocation-free
    /// [`WdpView`] instead — `WdpView::full(inst).skipping(idx)` visits
    /// exactly the same item sequence without the O(n) clone.
    pub fn without_item(&self, idx: usize) -> WdpInstance {
        let mut items = self.items.clone();
        items.remove(idx);
        WdpInstance {
            items,
            max_winners: self.max_winners,
            budget: self.budget,
        }
    }
}

/// A borrowed sub-instance: a subset of a parent instance's items
/// (optionally minus one skipped item) under the parent's constraints.
///
/// Every solver in this module runs on views; [`solve`] is the
/// whole-instance wrapper. Views exist for two reasons:
///
/// * **Leave-one-out pivots** — `WdpView::full(inst).skipping(i)` visits
///   the same item sequence as `inst.without_item(i)` with zero
///   allocation, and because the surviving parent indices map
///   monotonically, every float is added in the same order: solving the
///   view is *bit-identical* to solving the cloned instance.
/// * **Sharding** (`crate::shard`) — a shard or a champion pool is an
///   ascending index subset of the full market; solving the view returns
///   parent indices directly, so shard solutions and reconciliation
///   outcomes compose without re-indexing.
///
/// Solutions of a view carry **parent indices** in `selected`; for a full
/// view these coincide with the instance's own indices.
#[derive(Debug, Clone, Copy)]
pub struct WdpView<'a> {
    parent: &'a WdpInstance,
    /// Ascending parent indices in the view, or `None` for all items.
    subset: Option<&'a [usize]>,
    /// Parent index excluded from the view (leave-one-out pivots).
    skip: Option<usize>,
}

impl<'a> WdpView<'a> {
    /// View over every item of `parent`.
    pub fn full(parent: &'a WdpInstance) -> Self {
        WdpView {
            parent,
            subset: None,
            skip: None,
        }
    }

    /// View over the given parent indices, which must be sorted ascending
    /// and unique (debug-checked).
    pub fn of_subset(parent: &'a WdpInstance, indices: &'a [usize]) -> Self {
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "subset indices must be ascending and unique"
        );
        debug_assert!(indices.iter().all(|&i| i < parent.items.len()));
        WdpView {
            parent,
            subset: Some(indices),
            skip: None,
        }
    }

    /// The same view minus the item at `parent_idx` (for Clarke pivots).
    pub fn skipping(mut self, parent_idx: usize) -> Self {
        debug_assert!(self.skip.is_none(), "views support a single skip");
        self.skip = Some(parent_idx);
        self
    }

    /// The parent instance.
    pub fn parent(&self) -> &'a WdpInstance {
        self.parent
    }

    /// Cardinality cap (inherited from the parent).
    pub fn max_winners(&self) -> Option<usize> {
        self.parent.max_winners
    }

    /// Budget cap (inherited from the parent).
    pub fn budget(&self) -> Option<f64> {
        self.parent.budget
    }

    fn skip_is_member(&self) -> bool {
        match (self.skip, self.subset) {
            (None, _) => false,
            (Some(k), None) => k < self.parent.items.len(),
            (Some(k), Some(s)) => s.binary_search(&k).is_ok(),
        }
    }

    /// Number of items in the view.
    pub fn len(&self) -> usize {
        let base = match self.subset {
            Some(s) => s.len(),
            None => self.parent.items.len(),
        };
        base - usize::from(self.skip_is_member())
    }

    /// Whether the view has no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The item at a parent index (must be a member of the view).
    #[inline]
    pub fn item(&self, parent_idx: usize) -> &WdpItem {
        &self.parent.items[parent_idx]
    }

    /// Iterates the view's parent indices in ascending order.
    pub fn indices(&self) -> WdpViewIter<'a> {
        WdpViewIter {
            subset: self.subset,
            pos: 0,
            parent_len: self.parent.items.len(),
            skip: self.skip,
        }
    }

    /// Whether a selection of parent indices satisfies the view's
    /// constraints (same comparisons and float order as
    /// [`WdpInstance::feasible`]).
    pub fn feasible(&self, selected: &[usize]) -> bool {
        if let Some(k) = self.max_winners() {
            if selected.len() > k {
                return false;
            }
        }
        if let Some(b) = self.budget() {
            let cost: f64 = selected.iter().map(|&i| self.item(i).cost).sum();
            if cost > b + 1e-9 {
                return false;
            }
        }
        true
    }
}

/// Ascending parent-index iterator of a [`WdpView`].
pub struct WdpViewIter<'a> {
    subset: Option<&'a [usize]>,
    pos: usize,
    parent_len: usize,
    skip: Option<usize>,
}

impl Iterator for WdpViewIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            let i = match self.subset {
                Some(s) => *s.get(self.pos)?,
                None => {
                    if self.pos >= self.parent_len {
                        return None;
                    }
                    self.pos
                }
            };
            self.pos += 1;
            if Some(i) == self.skip {
                continue;
            }
            return Some(i);
        }
    }
}

/// A solved winner-determination instance.
#[derive(Debug, Clone, PartialEq)]
pub struct WdpSolution {
    /// Indices into [`WdpInstance::items`] of the selected items.
    pub selected: Vec<usize>,
    /// Achieved objective `Σ w_i`.
    pub objective: f64,
}

impl WdpSolution {
    /// Canonical solution construction: ascending parent indices, with the
    /// objective summed left-to-right over that order. Every solver and the
    /// incremental pivot engine go through this, which is what makes
    /// different derivations of the same selected set bit-identical.
    fn from_view(view: &WdpView<'_>, mut selected: Vec<usize>) -> Self {
        selected.sort_unstable();
        let objective = selected.iter().map(|&i| view.item(i).weight).sum();
        WdpSolution {
            selected,
            objective,
        }
    }
}

/// Which algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Automatically picks an exact algorithm for the constraint shape.
    Exact,
    /// Brute-force over all subsets (requires ≤ 25 items).
    Exhaustive,
    /// Budget-constrained dynamic program with this cost grid resolution.
    Knapsack {
        /// Number of grid cells the budget is discretized into.
        grid: usize,
    },
    /// Greedy by weight (cardinality) / weight-per-cost density (budget).
    GreedyDensity,
}

/// Solves a winner-determination instance ([`solve_view`] on the full
/// view).
pub fn solve(inst: &WdpInstance, kind: SolverKind) -> WdpSolution {
    solve_view(&WdpView::full(inst), kind)
}

/// Solves a winner-determination sub-instance view. `selected` in the
/// returned solution holds **parent indices**.
///
/// `SolverKind::Exact` dispatches to:
/// * top-K selection when no budget constraint is present (exact),
/// * exhaustive search when ≤ 25 items (exact),
/// * knapsack DP with a fine grid otherwise (exact up to cost rounding;
///   rounding is upward so the returned selection is always feasible).
///
/// # Panics
///
/// Panics if `Exhaustive` is requested for more than 25 items, or item
/// costs are negative/non-finite when a budget constraint is present.
pub fn solve_view(view: &WdpView<'_>, kind: SolverKind) -> WdpSolution {
    match kind {
        SolverKind::Exact => match view.budget() {
            None => top_k(view),
            Some(_) if view.len() <= 25 => exhaustive(view),
            Some(_) => knapsack(view, 4000),
        },
        SolverKind::Exhaustive => exhaustive(view),
        SolverKind::Knapsack { grid } => match view.budget() {
            Some(_) => knapsack(view, grid),
            None => top_k(view),
        },
        SolverKind::GreedyDensity => greedy_density(view),
    }
}

/// Preference order of the no-budget solver: positive-weight items,
/// stable-sorted by descending weight (parent indices). Shared with the
/// incremental pivot engine (`crate::pivots`), whose bit-identity contract
/// depends on using exactly this filter and comparator — keep the two in
/// lockstep.
pub(crate) fn preference_order(view: &WdpView<'_>) -> Vec<usize> {
    let mut order: Vec<usize> = view
        .indices()
        .filter(|&i| view.item(i).weight > 0.0)
        .collect();
    order.sort_by(|&a, &b| {
        view.item(b)
            .weight
            .partial_cmp(&view.item(a).weight)
            .expect("weights are finite")
    });
    order
}

/// Exact solver for views without a budget constraint: select the top-K
/// positive-weight items.
fn top_k(view: &WdpView<'_>) -> WdpSolution {
    let k = view.max_winners().unwrap_or(view.len());
    let mut order = preference_order(view);
    order.truncate(k);
    WdpSolution::from_view(view, order)
}

/// Brute-force exact solver.
fn exhaustive(view: &WdpView<'_>) -> WdpSolution {
    let n = view.len();
    assert!(n <= 25, "exhaustive solver limited to 25 items, got {n}");
    let members: Vec<usize> = view.indices().collect();
    let mut best: Vec<usize> = Vec::new();
    let mut best_obj = 0.0f64;
    for mask in 0u32..(1u32 << n) {
        let sel: Vec<usize> = (0..n)
            .filter(|&p| mask & (1 << p) != 0)
            .map(|p| members[p])
            .collect();
        if !view.feasible(&sel) {
            continue;
        }
        let obj: f64 = sel.iter().map(|&i| view.item(i).weight).sum();
        if obj > best_obj + 1e-15 {
            best_obj = obj;
            best = sel;
        }
    }
    WdpSolution::from_view(view, best)
}

/// Knapsack candidate filter: positive weight and individually affordable
/// (parent indices, ascending). Shared by the DP and the incremental pivot
/// engine (`crate::pivots`) so both see exactly the same item roster.
pub(crate) fn knapsack_candidates(view: &WdpView<'_>, budget: f64) -> Vec<usize> {
    view.indices()
        .filter(|&i| view.item(i).weight > 0.0 && view.item(i).cost <= budget + 1e-12)
        .collect()
}

/// Grid cell size for a budget discretized into `grid_eff` cells.
pub(crate) fn knapsack_cell(budget: f64, grid_eff: usize) -> f64 {
    if budget > 0.0 {
        budget / grid_eff as f64
    } else {
        1.0
    }
}

/// Discretized cost of one item. With a zero budget only zero-cost items
/// fit; `grid_eff + 1` marks "never fits".
pub(crate) fn knapsack_gcost(cost: f64, budget: f64, cell: f64, grid_eff: usize) -> usize {
    if budget == 0.0 {
        if cost > 0.0 {
            grid_eff + 1
        } else {
            0
        }
    } else {
        (cost / cell).floor() as usize
    }
}

/// Effective table width for the count-constrained DP: memory is
/// O(items · k · grid) bits, so the grid is coarsened if an absurd
/// combination is requested.
pub(crate) fn knapsack_width_2d(cand_len: usize, kmax: usize, grid: usize) -> usize {
    let width = grid + 1;
    let max_cells: usize = 1 << 28; // 256M flags ≈ 256 MB worst case
    if cand_len * (kmax + 1) * width > max_cells {
        (max_cells / (cand_len * (kmax + 1))).max(64)
    } else {
        width
    }
}

/// Post-DP repair: floor rounding may overshoot the true budget by up to
/// one cell per item; drops lowest-density selections (first-of-equal in
/// the vector's current order) until the true budget holds. Shared verbatim
/// with the incremental pivot engine so both produce identical floats.
///
/// Dropping the current global density minimum repeatedly is the same as
/// walking a stable density-ascending order (removals never change the
/// densities of the remaining items), so this sorts once — O(s log s)
/// instead of a rescan per drop — while reproducing the greedy loop's drop
/// sequence and float trajectory exactly.
pub(crate) fn repair_overspend(view: &WdpView<'_>, selected: &mut Vec<usize>, budget: f64) {
    let mut spent: f64 = selected.iter().map(|&i| view.item(i).cost).sum();
    if spent <= budget + 1e-9 {
        return;
    }
    let density: Vec<f64> = selected
        .iter()
        .map(|&i| view.item(i).weight / view.item(i).cost.max(1e-12))
        .collect();
    let mut drop_order: Vec<usize> = (0..selected.len()).collect();
    drop_order.sort_by(|&a, &b| {
        density[a]
            .partial_cmp(&density[b])
            .expect("densities are finite")
    });
    let mut dropped = vec![false; selected.len()];
    for &pos in &drop_order {
        if spent <= budget + 1e-9 {
            break;
        }
        dropped[pos] = true;
        spent -= view.item(selected[pos]).cost;
    }
    let mut idx = 0;
    selected.retain(|_| {
        let keep = !dropped[idx];
        idx += 1;
        keep
    });
}

/// Budget-constrained 0/1 knapsack DP over a discretized cost grid.
///
/// Costs are rounded *down* to grid cells (which keeps tight optimal packs
/// representable) and the reconstructed selection is then repaired to true
/// feasibility by dropping lowest-density items; with a fine grid the
/// objective loss is negligible. A cardinality constraint, when present, is
/// handled by adding a count dimension.
fn knapsack(view: &WdpView<'_>, grid: usize) -> WdpSolution {
    let budget = view.budget().expect("knapsack requires a budget");
    assert!(grid >= 1, "grid must be at least 1");
    for i in view.indices() {
        let it = view.item(i);
        assert!(
            it.cost.is_finite() && it.cost >= 0.0,
            "knapsack requires non-negative finite costs"
        );
    }
    let cand = knapsack_candidates(view, budget);
    if cand.is_empty() {
        return WdpSolution::from_view(view, Vec::new());
    }
    let cell = knapsack_cell(budget, grid);
    let gcost = |i: usize| -> usize { knapsack_gcost(view.item(i).cost, budget, cell, grid) };
    let width = grid + 1;
    let selected = match view.max_winners() {
        // No cardinality cap: 1-D DP over the cost grid. `taken[t][c]`
        // records that candidate t strictly improved state c; walking
        // candidates backwards and following the first set flag at the
        // current state is the standard exact reconstruction.
        None => {
            let mut dp = vec![0.0f64; width];
            let mut taken: Vec<Vec<bool>> = Vec::with_capacity(cand.len());
            for &i in &cand {
                let gc = gcost(i);
                let w = view.item(i).weight;
                let mut tk = vec![false; width];
                if gc <= grid {
                    for c in (gc..width).rev() {
                        let candidate = dp[c - gc] + w;
                        if candidate > dp[c] + 1e-15 {
                            dp[c] = candidate;
                            tk[c] = true;
                        }
                    }
                }
                taken.push(tk);
            }
            let mut bc = 0usize;
            for (c, &v) in dp.iter().enumerate() {
                if v > dp[bc] + 1e-15 {
                    bc = c;
                }
            }
            let mut selected = Vec::new();
            let mut c = bc;
            for t in (0..cand.len()).rev() {
                if taken[t][c] {
                    let i = cand[t];
                    selected.push(i);
                    c -= gcost(i);
                }
            }
            selected
        }
        // Cardinality cap: add a count dimension. Memory is
        // O(items · k · grid) bits, so cap the table size and coarsen the
        // grid if an absurd combination is requested.
        Some(k) => {
            let kmax = k.min(cand.len());
            let width = knapsack_width_2d(cand.len(), kmax, grid);
            let grid_eff = width - 1;
            let cell_eff = knapsack_cell(budget, grid_eff);
            let gcost_eff = |i: usize| -> usize {
                knapsack_gcost(view.item(i).cost, budget, cell_eff, grid_eff)
            };
            let mut dp = vec![vec![0.0f64; width]; kmax + 1];
            let mut taken: Vec<Vec<bool>> = Vec::with_capacity(cand.len());
            for &i in &cand {
                let gc = gcost_eff(i);
                let w = view.item(i).weight;
                let mut tk = vec![false; (kmax + 1) * width];
                if gc <= grid_eff {
                    for j in (1..=kmax).rev() {
                        for c in (gc..width).rev() {
                            let candidate = dp[j - 1][c - gc] + w;
                            if candidate > dp[j][c] + 1e-15 {
                                dp[j][c] = candidate;
                                tk[j * width + c] = true;
                            }
                        }
                    }
                }
                taken.push(tk);
            }
            let (mut bj, mut bc, mut best) = (0usize, 0usize, 0.0f64);
            for (j, row) in dp.iter().enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    if v > best + 1e-15 {
                        best = v;
                        bj = j;
                        bc = c;
                    }
                }
            }
            let mut selected = Vec::new();
            let mut j = bj;
            let mut c = bc;
            for t in (0..cand.len()).rev() {
                if j == 0 {
                    break;
                }
                if taken[t][j * width + c] {
                    let i = cand[t];
                    selected.push(i);
                    c -= gcost_eff(i);
                    j -= 1;
                }
            }
            selected
        }
    };
    let mut selected = selected;
    repair_overspend(view, &mut selected, budget);
    WdpSolution::from_view(view, selected)
}

/// Greedy approximation: by weight when only cardinality binds, by
/// weight/cost density under a budget.
fn greedy_density(view: &WdpView<'_>) -> WdpSolution {
    let mut order: Vec<usize> = view
        .indices()
        .filter(|&i| view.item(i).weight > 0.0)
        .collect();
    match view.budget() {
        None => order.sort_by(|&a, &b| {
            view.item(b)
                .weight
                .partial_cmp(&view.item(a).weight)
                .expect("weights are finite")
        }),
        Some(_) => order.sort_by(|&a, &b| {
            let da = view.item(a).weight / view.item(a).cost.max(1e-12);
            let db = view.item(b).weight / view.item(b).cost.max(1e-12);
            db.partial_cmp(&da).expect("densities are finite")
        }),
    }
    let k = view.max_winners().unwrap_or(view.len());
    let mut selected = Vec::new();
    let mut spent = 0.0;
    for i in order {
        if selected.len() >= k {
            break;
        }
        if let Some(b) = view.budget() {
            if spent + view.item(i).cost > b + 1e-12 {
                continue;
            }
        }
        spent += view.item(i).cost;
        selected.push(i);
    }
    WdpSolution::from_view(view, selected)
}

/// Fractional (LP-relaxation) upper bound on the optimum of a
/// budget-constrained instance; equals the exact optimum when no budget is
/// present. Used as the denominator in competitive-ratio plots.
pub fn fractional_upper_bound(inst: &WdpInstance) -> f64 {
    match inst.budget {
        None => top_k(&WdpView::full(inst)).objective,
        Some(budget) => {
            let mut order: Vec<usize> = (0..inst.items.len())
                .filter(|&i| inst.items[i].weight > 0.0)
                .collect();
            order.sort_by(|&a, &b| {
                let da = inst.items[a].weight / inst.items[a].cost.max(1e-12);
                let db = inst.items[b].weight / inst.items[b].cost.max(1e-12);
                db.partial_cmp(&da).expect("densities are finite")
            });
            let k = inst.max_winners.unwrap_or(inst.items.len());
            let mut remaining = budget;
            let mut total = 0.0;
            let mut count = 0usize;
            for i in order {
                if count >= k || remaining <= 0.0 {
                    break;
                }
                let it = inst.items[i];
                if it.cost <= remaining {
                    total += it.weight;
                    remaining -= it.cost;
                    count += 1;
                } else if it.cost > 0.0 {
                    total += it.weight * remaining / it.cost;
                    remaining = 0.0;
                }
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rngs::StdRng, RngExt, SeedableRng};

    fn item(bidder: usize, weight: f64, cost: f64) -> WdpItem {
        WdpItem {
            bidder,
            weight,
            cost,
        }
    }

    #[test]
    fn top_k_selects_heaviest_positive() {
        let inst = WdpInstance::new(vec![
            item(0, 3.0, 1.0),
            item(1, -1.0, 1.0),
            item(2, 5.0, 1.0),
            item(3, 1.0, 1.0),
        ])
        .with_max_winners(2);
        let sol = solve(&inst, SolverKind::Exact);
        assert_eq!(sol.selected, vec![0, 2]);
        assert_eq!(sol.objective, 8.0);
    }

    #[test]
    fn unconstrained_takes_all_positive() {
        let inst = WdpInstance::new(vec![
            item(0, 1.0, 0.0),
            item(1, -2.0, 0.0),
            item(2, 0.5, 0.0),
        ]);
        let sol = solve(&inst, SolverKind::Exact);
        assert_eq!(sol.selected, vec![0, 2]);
    }

    #[test]
    fn exhaustive_respects_budget() {
        // Best unbudgeted = {0, 1} (weight 10), but budget only allows {1, 2}.
        let inst = WdpInstance::new(vec![
            item(0, 6.0, 10.0),
            item(1, 4.0, 4.0),
            item(2, 3.0, 3.0),
        ])
        .with_budget(8.0);
        let sol = solve(&inst, SolverKind::Exhaustive);
        assert_eq!(sol.selected, vec![1, 2]);
        assert_eq!(sol.objective, 7.0);
    }

    #[test]
    fn knapsack_matches_exhaustive_small() {
        let inst = WdpInstance::new(vec![
            item(0, 6.0, 10.0),
            item(1, 4.0, 4.0),
            item(2, 3.0, 3.0),
            item(3, 2.5, 2.0),
        ])
        .with_budget(9.0);
        let ex = solve(&inst, SolverKind::Exhaustive);
        let kn = solve(&inst, SolverKind::Knapsack { grid: 2000 });
        assert!((ex.objective - kn.objective).abs() < 0.05);
        assert!(inst.feasible(&kn.selected));
    }

    #[test]
    fn knapsack_with_cardinality() {
        let inst = WdpInstance::new(vec![
            item(0, 5.0, 1.0),
            item(1, 4.0, 1.0),
            item(2, 3.0, 1.0),
        ])
        .with_budget(10.0)
        .with_max_winners(2);
        let sol = solve(&inst, SolverKind::Knapsack { grid: 100 });
        assert_eq!(sol.selected, vec![0, 1]);
    }

    #[test]
    fn knapsack_zero_budget_only_free_items() {
        let inst = WdpInstance::new(vec![item(0, 5.0, 1.0), item(1, 2.0, 0.0)]).with_budget(0.0);
        let sol = solve(&inst, SolverKind::Knapsack { grid: 100 });
        assert_eq!(sol.selected, vec![1]);
    }

    #[test]
    fn greedy_density_feasible_and_reasonable() {
        let inst = WdpInstance::new(vec![
            item(0, 10.0, 10.0), // density 1.0
            item(1, 6.0, 3.0),   // density 2.0
            item(2, 5.0, 3.0),   // density 1.67
        ])
        .with_budget(6.0);
        let sol = solve(&inst, SolverKind::GreedyDensity);
        assert_eq!(sol.selected, vec![1, 2]);
        assert!(inst.feasible(&sol.selected));
    }

    #[test]
    fn fractional_bound_dominates_exact() {
        let inst = WdpInstance::new(vec![
            item(0, 6.0, 5.0),
            item(1, 4.0, 4.0),
            item(2, 3.0, 3.0),
        ])
        .with_budget(7.0);
        let exact = solve(&inst, SolverKind::Exhaustive);
        let bound = fractional_upper_bound(&inst);
        assert!(bound >= exact.objective - 1e-9);
    }

    #[test]
    fn without_item_shifts_indices() {
        let inst = WdpInstance::new(vec![
            item(0, 1.0, 1.0),
            item(1, 2.0, 2.0),
            item(2, 3.0, 3.0),
        ]);
        let reduced = inst.without_item(1);
        assert_eq!(reduced.items.len(), 2);
        assert_eq!(reduced.items[1].bidder, 2);
    }

    /// Property: the allocation-free skip view visits the same item
    /// sequence as the materialized `without_item` clone, so solving it is
    /// bit-identical — objective included — across all four constraint
    /// combos and every solver dispatch.
    #[test]
    fn skip_view_bit_identical_to_without_item() {
        let mut rng = StdRng::seed_from_u64(0x5C1B);
        for round in 0..60 {
            // Small n exercises the exhaustive dispatch (2ⁿ masks), larger
            // n the knapsack/top-K dispatch via an explicit grid kind.
            let small = rng.random();
            let n = if small {
                rng.random_range(2..11usize)
            } else {
                rng.random_range(28..50usize)
            };
            let items: Vec<WdpItem> = (0..n)
                .map(|i| item(i, rng.random_range(-3.0..9.0), rng.random_range(0.0..4.0)))
                .collect();
            let mut inst = WdpInstance::new(items);
            if rng.random() {
                inst = inst.with_max_winners(rng.random_range(1..8usize));
            }
            if rng.random() {
                inst = inst.with_budget(rng.random_range(0.0..12.0));
            }
            let kind = if small {
                SolverKind::Exact
            } else {
                SolverKind::Knapsack { grid: 300 }
            };
            for idx in 0..n {
                let cloned = solve(&inst.without_item(idx), kind);
                let viewed = solve_view(&WdpView::full(&inst).skipping(idx), kind);
                assert_eq!(
                    cloned.objective.to_bits(),
                    viewed.objective.to_bits(),
                    "round {round} idx {idx}: clone {} vs view {}",
                    cloned.objective,
                    viewed.objective
                );
                assert_eq!(cloned.selected.len(), viewed.selected.len());
            }
        }
    }

    /// A subset view solves exactly the materialized sub-instance: same
    /// winner set (mapped through the subset) and bit-identical objective.
    #[test]
    fn subset_view_matches_materialized_subinstance() {
        let mut rng = StdRng::seed_from_u64(0x50B5);
        for _ in 0..40 {
            // Subsets stay ≤ ~16 items so the budgeted Exact dispatch
            // (exhaustive) remains cheap.
            let n = rng.random_range(4..32usize);
            let items: Vec<WdpItem> = (0..n)
                .map(|i| item(i, rng.random_range(-2.0..8.0), rng.random_range(0.1..3.0)))
                .collect();
            let mut inst = WdpInstance::new(items).with_max_winners(rng.random_range(1..6usize));
            if rng.random() {
                inst = inst.with_budget(rng.random_range(0.5..10.0));
            }
            let subset: Vec<usize> = (0..n)
                .filter(|_| rng.random_range(0..2usize) == 0)
                .take(16)
                .collect();
            let materialized = WdpInstance {
                items: subset.iter().map(|&i| inst.items[i]).collect(),
                max_winners: inst.max_winners,
                budget: inst.budget,
            };
            let sub_sol = solve(&materialized, SolverKind::Exact);
            let view_sol = solve_view(&WdpView::of_subset(&inst, &subset), SolverKind::Exact);
            assert_eq!(
                sub_sol.objective.to_bits(),
                view_sol.objective.to_bits(),
                "objectives diverged"
            );
            let mapped: Vec<usize> = sub_sol.selected.iter().map(|&p| subset[p]).collect();
            assert_eq!(mapped, view_sol.selected, "selections diverged");
        }
    }

    #[test]
    fn view_len_and_iteration_respect_skip() {
        let inst = WdpInstance::new(vec![
            item(0, 1.0, 1.0),
            item(1, 2.0, 1.0),
            item(2, 3.0, 1.0),
            item(3, 4.0, 1.0),
        ]);
        let full = WdpView::full(&inst);
        assert_eq!(full.len(), 4);
        assert_eq!(full.indices().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let skipped = full.skipping(2);
        assert_eq!(skipped.len(), 3);
        assert_eq!(skipped.indices().collect::<Vec<_>>(), vec![0, 1, 3]);
        let subset = [1usize, 2, 3];
        let sub = WdpView::of_subset(&inst, &subset).skipping(3);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.indices().collect::<Vec<_>>(), vec![1, 2]);
        assert!(!sub.is_empty());
    }

    #[test]
    fn empty_instance_empty_solution() {
        let inst = WdpInstance::new(vec![]);
        for kind in [
            SolverKind::Exact,
            SolverKind::Exhaustive,
            SolverKind::GreedyDensity,
        ] {
            let sol = solve(&inst, kind);
            assert!(sol.selected.is_empty());
            assert_eq!(sol.objective, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "exhaustive solver limited")]
    fn exhaustive_size_guard() {
        let items: Vec<WdpItem> = (0..30).map(|i| item(i, 1.0, 1.0)).collect();
        let _ = solve(&WdpInstance::new(items), SolverKind::Exhaustive);
    }

    /// Property: exact dispatch must match brute force on small instances
    /// (seeded random instances).
    #[test]
    fn exact_matches_exhaustive() {
        let mut rng = StdRng::seed_from_u64(0xE8AC);
        for _ in 0..150 {
            let n = rng.random_range(1..10usize);
            let items: Vec<WdpItem> = (0..n)
                .map(|i| item(i, rng.random_range(-5.0..10.0), rng.random_range(0.0..5.0)))
                .collect();
            let k = rng.random_range(1..6usize);
            let use_budget: bool = rng.random();
            let mut inst = WdpInstance::new(items).with_max_winners(k);
            if use_budget {
                inst = inst.with_budget(rng.random_range(0.0..15.0));
            }
            let exact = solve(&inst, SolverKind::Exact);
            let brute = solve(&inst, SolverKind::Exhaustive);
            // Knapsack grid rounding may lose a sliver of objective; the
            // no-budget path must be exactly optimal.
            let tol = if use_budget { 0.1 } else { 1e-9 };
            assert!(
                exact.objective >= brute.objective - tol,
                "exact {} < brute {}",
                exact.objective,
                brute.objective
            );
            assert!(inst.feasible(&exact.selected));
        }
    }

    /// Property: greedy is always feasible and never exceeds the exact
    /// optimum (seeded random instances).
    #[test]
    fn greedy_feasible_and_bounded() {
        let mut rng = StdRng::seed_from_u64(0x62EE);
        for _ in 0..150 {
            let n = rng.random_range(1..12usize);
            let items: Vec<WdpItem> = (0..n)
                .map(|i| item(i, rng.random_range(0.1..10.0), rng.random_range(0.1..5.0)))
                .collect();
            let budget = rng.random_range(1.0..20.0f64);
            let inst = WdpInstance::new(items).with_budget(budget);
            let greedy = solve(&inst, SolverKind::GreedyDensity);
            let brute = solve(&inst, SolverKind::Exhaustive);
            assert!(inst.feasible(&greedy.selected));
            assert!(greedy.objective <= brute.objective + 1e-9);
            let bound = fractional_upper_bound(&inst);
            assert!(bound >= brute.objective - 1e-9);
        }
    }
}
