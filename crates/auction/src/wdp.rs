//! Winner-determination problem (WDP) solvers.
//!
//! The per-round problem is: given items with *score* `w_i` (already
//! combining platform value and weighted cost, e.g. `w_i = V·v_i − Q·c_i`)
//! and money cost `c_i`, choose a subset maximizing `Σ w_i` subject to an
//! optional cardinality cap and an optional budget cap on `Σ c_i`.
//!
//! Exact solutions are required for VCG truthfulness; this module provides
//! exact solvers for every constraint combination used by LOVM, plus a
//! greedy approximation and a fractional upper bound used by baselines and
//! the experiment harness.

/// Strict-improvement epsilon of every DP/scan comparison in the solver
/// stack: a candidate value only replaces an incumbent when it exceeds it
/// by more than `DP_EPS`.
///
/// Payments depend on this constant **bitwise**: the epsilon decides which
/// of two near-tied states wins, that decision picks the reconstructed
/// winner set, and the winner set drives every pivot welfare and payment
/// float downstream. The golden corpus, `pivot_equivalence`, and the
/// arena differential suite all pin outputs produced under this exact
/// value and comparison shape (`new > old + DP_EPS`), so any change to the
/// epsilon — or to the order the comparisons are evaluated in — is a
/// payment-breaking change, not a tuning knob.
pub const DP_EPS: f64 = 1e-15;

/// One candidate in a winner-determination instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WdpItem {
    /// Stable bidder identifier carried through to the outcome.
    pub bidder: usize,
    /// Selection score (may be negative; negative items are never selected).
    pub weight: f64,
    /// Money cost counted against the budget constraint (must be ≥ 0).
    pub cost: f64,
}

/// A winner-determination instance.
#[derive(Debug, Clone, PartialEq)]
pub struct WdpInstance {
    /// Candidate items.
    pub items: Vec<WdpItem>,
    /// Maximum number of winners (`None` = unlimited).
    pub max_winners: Option<usize>,
    /// Budget cap on total selected cost (`None` = unlimited).
    pub budget: Option<f64>,
}

impl WdpInstance {
    /// Creates an unconstrained instance.
    pub fn new(items: Vec<WdpItem>) -> Self {
        WdpInstance {
            items,
            max_winners: None,
            budget: None,
        }
    }

    /// Adds a cardinality cap.
    pub fn with_max_winners(mut self, k: usize) -> Self {
        self.max_winners = Some(k);
        self
    }

    /// Adds a budget cap.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is negative or non-finite.
    pub fn with_budget(mut self, budget: f64) -> Self {
        assert!(
            budget.is_finite() && budget >= 0.0,
            "budget must be finite and >= 0"
        );
        self.budget = Some(budget);
        self
    }

    /// Objective value of a candidate selection (indices into `items`).
    pub fn objective(&self, selected: &[usize]) -> f64 {
        selected.iter().map(|&i| self.items[i].weight).sum()
    }

    /// Total cost of a candidate selection.
    pub fn total_cost(&self, selected: &[usize]) -> f64 {
        selected.iter().map(|&i| self.items[i].cost).sum()
    }

    /// Whether a selection satisfies both constraints (delegates to the
    /// full view so the comparison logic exists exactly once).
    pub fn feasible(&self, selected: &[usize]) -> bool {
        WdpView::full(self).feasible(selected)
    }

    /// Returns the instance with item `idx` removed (for Clarke pivots).
    ///
    /// This materializes a new `Vec` of items; the hot paths (the naive
    /// pivot engine, the shard pipeline) use the allocation-free
    /// [`WdpView`] instead — `WdpView::full(inst).skipping(idx)` visits
    /// exactly the same item sequence without the O(n) clone.
    pub fn without_item(&self, idx: usize) -> WdpInstance {
        let mut items = self.items.clone();
        items.remove(idx);
        WdpInstance {
            items,
            max_winners: self.max_winners,
            budget: self.budget,
        }
    }
}

/// A borrowed sub-instance: a subset of a parent instance's items
/// (optionally minus one skipped item) under the parent's constraints.
///
/// Every solver in this module runs on views; [`solve`] is the
/// whole-instance wrapper. Views exist for two reasons:
///
/// * **Leave-one-out pivots** — `WdpView::full(inst).skipping(i)` visits
///   the same item sequence as `inst.without_item(i)` with zero
///   allocation, and because the surviving parent indices map
///   monotonically, every float is added in the same order: solving the
///   view is *bit-identical* to solving the cloned instance.
/// * **Sharding** (`crate::shard`) — a shard or a champion pool is an
///   ascending index subset of the full market; solving the view returns
///   parent indices directly, so shard solutions and reconciliation
///   outcomes compose without re-indexing.
///
/// Solutions of a view carry **parent indices** in `selected`; for a full
/// view these coincide with the instance's own indices.
#[derive(Debug, Clone, Copy)]
pub struct WdpView<'a> {
    parent: &'a WdpInstance,
    /// Ascending parent indices in the view, or `None` for all items.
    subset: Option<&'a [usize]>,
    /// Parent index excluded from the view (leave-one-out pivots).
    skip: Option<usize>,
}

impl<'a> WdpView<'a> {
    /// View over every item of `parent`.
    pub fn full(parent: &'a WdpInstance) -> Self {
        WdpView {
            parent,
            subset: None,
            skip: None,
        }
    }

    /// View over the given parent indices, which must be sorted ascending
    /// and unique (debug-checked).
    pub fn of_subset(parent: &'a WdpInstance, indices: &'a [usize]) -> Self {
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "subset indices must be ascending and unique"
        );
        debug_assert!(indices.iter().all(|&i| i < parent.items.len()));
        WdpView {
            parent,
            subset: Some(indices),
            skip: None,
        }
    }

    /// The same view minus the item at `parent_idx` (for Clarke pivots).
    pub fn skipping(mut self, parent_idx: usize) -> Self {
        debug_assert!(self.skip.is_none(), "views support a single skip");
        self.skip = Some(parent_idx);
        self
    }

    /// The parent instance.
    pub fn parent(&self) -> &'a WdpInstance {
        self.parent
    }

    /// Cardinality cap (inherited from the parent).
    pub fn max_winners(&self) -> Option<usize> {
        self.parent.max_winners
    }

    /// Budget cap (inherited from the parent).
    pub fn budget(&self) -> Option<f64> {
        self.parent.budget
    }

    fn skip_is_member(&self) -> bool {
        match (self.skip, self.subset) {
            (None, _) => false,
            (Some(k), None) => k < self.parent.items.len(),
            (Some(k), Some(s)) => s.binary_search(&k).is_ok(),
        }
    }

    /// Number of items in the view.
    pub fn len(&self) -> usize {
        let base = match self.subset {
            Some(s) => s.len(),
            None => self.parent.items.len(),
        };
        base - usize::from(self.skip_is_member())
    }

    /// Whether the view has no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The item at a parent index (must be a member of the view).
    #[inline]
    pub fn item(&self, parent_idx: usize) -> &WdpItem {
        &self.parent.items[parent_idx]
    }

    /// Iterates the view's parent indices in ascending order.
    pub fn indices(&self) -> WdpViewIter<'a> {
        WdpViewIter {
            subset: self.subset,
            pos: 0,
            parent_len: self.parent.items.len(),
            skip: self.skip,
        }
    }

    /// Whether a selection of parent indices satisfies the view's
    /// constraints (same comparisons and float order as
    /// [`WdpInstance::feasible`]).
    pub fn feasible(&self, selected: &[usize]) -> bool {
        if let Some(k) = self.max_winners() {
            if selected.len() > k {
                return false;
            }
        }
        if let Some(b) = self.budget() {
            let cost: f64 = selected.iter().map(|&i| self.item(i).cost).sum();
            if cost > b + 1e-9 {
                return false;
            }
        }
        true
    }
}

/// Ascending parent-index iterator of a [`WdpView`].
pub struct WdpViewIter<'a> {
    subset: Option<&'a [usize]>,
    pos: usize,
    parent_len: usize,
    skip: Option<usize>,
}

impl Iterator for WdpViewIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            let i = match self.subset {
                Some(s) => *s.get(self.pos)?,
                None => {
                    if self.pos >= self.parent_len {
                        return None;
                    }
                    self.pos
                }
            };
            self.pos += 1;
            if Some(i) == self.skip {
                continue;
            }
            return Some(i);
        }
    }
}

/// A solved winner-determination instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WdpSolution {
    /// Indices into [`WdpInstance::items`] of the selected items.
    pub selected: Vec<usize>,
    /// Achieved objective `Σ w_i`.
    pub objective: f64,
}

impl WdpSolution {
    /// Canonical solution construction: ascending parent indices, with the
    /// objective summed left-to-right over that order. Every solver and the
    /// incremental pivot engine go through this, which is what makes
    /// different derivations of the same selected set bit-identical.
    fn from_view(view: &WdpView<'_>, mut selected: Vec<usize>) -> Self {
        selected.sort_unstable();
        let objective = selected.iter().map(|&i| view.item(i).weight).sum();
        WdpSolution {
            selected,
            objective,
        }
    }
}

/// Which algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Automatically picks an exact algorithm for the constraint shape.
    Exact,
    /// Brute-force over all subsets (requires ≤ 25 items).
    Exhaustive,
    /// Budget-constrained dynamic program with this cost grid resolution.
    Knapsack {
        /// Number of grid cells the budget is discretized into.
        grid: usize,
    },
    /// Greedy by weight (cardinality) / weight-per-cost density (budget).
    GreedyDensity,
}

/// Solves a winner-determination instance ([`solve_view`] on the full
/// view).
pub fn solve(inst: &WdpInstance, kind: SolverKind) -> WdpSolution {
    solve_view(&WdpView::full(inst), kind)
}

/// Solves a winner-determination sub-instance view. `selected` in the
/// returned solution holds **parent indices**.
///
/// `SolverKind::Exact` dispatches to:
/// * top-K selection when no budget constraint is present (exact),
/// * exhaustive search when ≤ 25 items (exact),
/// * knapsack DP with a fine grid otherwise (exact up to cost rounding;
///   rounding is upward so the returned selection is always feasible).
///
/// # Panics
///
/// Panics if `Exhaustive` is requested for more than 25 items, or item
/// costs are negative/non-finite when a budget constraint is present.
pub fn solve_view(view: &WdpView<'_>, kind: SolverKind) -> WdpSolution {
    let _solve_span = solver_kind_hist(kind).span();
    match kind {
        SolverKind::Exact => match view.budget() {
            None => top_k(view),
            Some(_) if view.len() <= 25 => exhaustive(view),
            Some(_) => knapsack(view, 4000),
        },
        SolverKind::Exhaustive => exhaustive(view),
        SolverKind::Knapsack { grid } => match view.budget() {
            Some(_) => knapsack(view, grid),
            None => top_k(view),
        },
        SolverKind::GreedyDensity => greedy_density(view),
    }
}

/// The per-`SolverKind` WDP latency histogram (`solve.wdp.<kind>_ns`).
/// Telemetry is a pure observer: these spans record wall time only and
/// can never reach a payment, digest, or journal byte.
fn solver_kind_hist(kind: SolverKind) -> &'static telemetry::Histogram {
    match kind {
        SolverKind::Exact => telemetry::hist!("solve.wdp.exact_ns"),
        SolverKind::Exhaustive => telemetry::hist!("solve.wdp.exhaustive_ns"),
        SolverKind::Knapsack { .. } => telemetry::hist!("solve.wdp.knapsack_ns"),
        SolverKind::GreedyDensity => telemetry::hist!("solve.wdp.greedy_ns"),
    }
}

/// Preference order of the no-budget solver: positive-weight items,
/// stable-sorted by descending weight (parent indices). Shared with the
/// incremental pivot engine (`crate::pivots`), whose bit-identity contract
/// depends on using exactly this filter and comparator — keep the two in
/// lockstep.
pub(crate) fn preference_order(view: &WdpView<'_>) -> Vec<usize> {
    let mut order = Vec::new();
    fill_preference_order(view, &mut order);
    order
}

/// [`preference_order`] into a caller-recycled buffer (cleared first).
///
/// The comparator is (weight descending, parent index ascending). Because
/// the candidates enter the buffer in ascending parent-index order, that
/// tiebreak makes `sort_unstable_by` produce the exact permutation a
/// stable descending-weight sort would — without the merge-sort scratch
/// allocation, which is what lets [`SolverArena`] top-K solves run
/// allocation-free at steady state.
pub(crate) fn fill_preference_order(view: &WdpView<'_>, order: &mut Vec<usize>) {
    order.clear();
    order.extend(view.indices().filter(|&i| view.item(i).weight > 0.0));
    order.sort_unstable_by(|&a, &b| {
        view.item(b)
            .weight
            .partial_cmp(&view.item(a).weight)
            .expect("weights are finite")
            .then_with(|| a.cmp(&b))
    });
}

/// Exact solver for views without a budget constraint: select the top-K
/// positive-weight items.
fn top_k(view: &WdpView<'_>) -> WdpSolution {
    let k = view.max_winners().unwrap_or(view.len());
    let mut order = preference_order(view);
    order.truncate(k);
    WdpSolution::from_view(view, order)
}

/// Brute-force exact solver.
fn exhaustive(view: &WdpView<'_>) -> WdpSolution {
    let n = view.len();
    assert!(n <= 25, "exhaustive solver limited to 25 items, got {n}");
    let members: Vec<usize> = view.indices().collect();
    let mut best: Vec<usize> = Vec::new();
    let mut best_obj = 0.0f64;
    for mask in 0u32..(1u32 << n) {
        let sel: Vec<usize> = (0..n)
            .filter(|&p| mask & (1 << p) != 0)
            .map(|p| members[p])
            .collect();
        if !view.feasible(&sel) {
            continue;
        }
        let obj: f64 = sel.iter().map(|&i| view.item(i).weight).sum();
        if obj > best_obj + DP_EPS {
            best_obj = obj;
            best = sel;
        }
    }
    WdpSolution::from_view(view, best)
}

/// Knapsack candidate filter: positive weight and individually affordable
/// (parent indices, ascending). Shared by the DP and the incremental pivot
/// engine (`crate::pivots`) so both see exactly the same item roster.
pub(crate) fn knapsack_candidates(view: &WdpView<'_>, budget: f64) -> Vec<usize> {
    view.indices()
        .filter(|&i| view.item(i).weight > 0.0 && view.item(i).cost <= budget + 1e-12)
        .collect()
}

/// Grid cell size for a budget discretized into `grid_eff` cells.
pub(crate) fn knapsack_cell(budget: f64, grid_eff: usize) -> f64 {
    if budget > 0.0 {
        budget / grid_eff as f64
    } else {
        1.0
    }
}

/// Discretized cost of one item. With a zero budget only zero-cost items
/// fit; `grid_eff + 1` marks "never fits".
pub(crate) fn knapsack_gcost(cost: f64, budget: f64, cell: f64, grid_eff: usize) -> usize {
    if budget == 0.0 {
        if cost > 0.0 {
            grid_eff + 1
        } else {
            0
        }
    } else {
        (cost / cell).floor() as usize
    }
}

/// Effective table width for the count-constrained DP: memory is
/// O(items · k · grid) bits, so the grid is coarsened if an absurd
/// combination is requested.
pub(crate) fn knapsack_width_2d(cand_len: usize, kmax: usize, grid: usize) -> usize {
    let width = grid + 1;
    let max_cells: usize = 1 << 28; // 256M flags ≈ 256 MB worst case
    if cand_len * (kmax + 1) * width > max_cells {
        (max_cells / (cand_len * (kmax + 1))).max(64)
    } else {
        width
    }
}

/// Post-DP repair: floor rounding may overshoot the true budget by up to
/// one cell per item; drops lowest-density selections (first-of-equal in
/// the vector's current order) until the true budget holds. Shared verbatim
/// with the incremental pivot engine so both produce identical floats.
///
/// Dropping the current global density minimum repeatedly is the same as
/// walking a stable density-ascending order (removals never change the
/// densities of the remaining items), so this sorts once — O(s log s)
/// instead of a rescan per drop — while reproducing the greedy loop's drop
/// sequence and float trajectory exactly.
pub(crate) fn repair_overspend(
    view: &WdpView<'_>,
    selected: &mut Vec<usize>,
    budget: f64,
    scratch: &mut RepairScratch,
) {
    let mut spent: f64 = selected.iter().map(|&i| view.item(i).cost).sum();
    if spent <= budget + 1e-9 {
        return;
    }
    let RepairScratch {
        density,
        drop_order,
        dropped,
    } = scratch;
    density.clear();
    density.extend(
        selected
            .iter()
            .map(|&i| view.item(i).weight / view.item(i).cost.max(1e-12)),
    );
    drop_order.clear();
    drop_order.extend(0..selected.len());
    // (density ascending, position ascending): positions are unique, so
    // `sort_unstable_by` with the position tiebreak is the same permutation
    // a stable density sort would produce, minus its scratch allocation.
    drop_order.sort_unstable_by(|&a, &b| {
        density[a]
            .partial_cmp(&density[b])
            .expect("densities are finite")
            .then_with(|| a.cmp(&b))
    });
    dropped.clear();
    dropped.resize(selected.len(), false);
    for &pos in drop_order.iter() {
        if spent <= budget + 1e-9 {
            break;
        }
        dropped[pos] = true;
        spent -= view.item(selected[pos]).cost;
    }
    let mut idx = 0;
    selected.retain(|_| {
        let keep = !dropped[idx];
        idx += 1;
        keep
    });
}

/// Reusable buffers for [`repair_overspend`]. Hot paths keep one alive per
/// solver arena / pivot worker; cold paths build a throwaway default.
#[derive(Debug, Clone, Default)]
pub(crate) struct RepairScratch {
    density: Vec<f64>,
    drop_order: Vec<usize>,
    dropped: Vec<bool>,
}

/// Budget-constrained 0/1 knapsack DP over a discretized cost grid.
///
/// Costs are rounded *down* to grid cells (which keeps tight optimal packs
/// representable) and the reconstructed selection is then repaired to true
/// feasibility by dropping lowest-density items; with a fine grid the
/// objective loss is negligible. A cardinality constraint, when present, is
/// handled by adding a count dimension.
fn knapsack(view: &WdpView<'_>, grid: usize) -> WdpSolution {
    let budget = view.budget().expect("knapsack requires a budget");
    assert!(grid >= 1, "grid must be at least 1");
    for i in view.indices() {
        let it = view.item(i);
        assert!(
            it.cost.is_finite() && it.cost >= 0.0,
            "knapsack requires non-negative finite costs"
        );
    }
    let cand = knapsack_candidates(view, budget);
    if cand.is_empty() {
        return WdpSolution::from_view(view, Vec::new());
    }
    let cell = knapsack_cell(budget, grid);
    let gcost = |i: usize| -> usize { knapsack_gcost(view.item(i).cost, budget, cell, grid) };
    let width = grid + 1;
    let selected = match view.max_winners() {
        // No cardinality cap: 1-D DP over the cost grid. `taken[t][c]`
        // records that candidate t strictly improved state c; walking
        // candidates backwards and following the first set flag at the
        // current state is the standard exact reconstruction.
        None => {
            let mut dp = vec![0.0f64; width];
            let mut taken: Vec<Vec<bool>> = Vec::with_capacity(cand.len());
            for &i in &cand {
                let gc = gcost(i);
                let w = view.item(i).weight;
                let mut tk = vec![false; width];
                if gc <= grid {
                    for c in (gc..width).rev() {
                        let candidate = dp[c - gc] + w;
                        if candidate > dp[c] + DP_EPS {
                            dp[c] = candidate;
                            tk[c] = true;
                        }
                    }
                }
                taken.push(tk);
            }
            let mut bc = 0usize;
            for (c, &v) in dp.iter().enumerate() {
                if v > dp[bc] + DP_EPS {
                    bc = c;
                }
            }
            let mut selected = Vec::new();
            let mut c = bc;
            for t in (0..cand.len()).rev() {
                if taken[t][c] {
                    let i = cand[t];
                    selected.push(i);
                    c -= gcost(i);
                }
            }
            selected
        }
        // Cardinality cap: add a count dimension. Memory is
        // O(items · k · grid) bits, so cap the table size and coarsen the
        // grid if an absurd combination is requested.
        Some(k) => {
            let kmax = k.min(cand.len());
            let width = knapsack_width_2d(cand.len(), kmax, grid);
            let grid_eff = width - 1;
            let cell_eff = knapsack_cell(budget, grid_eff);
            let gcost_eff = |i: usize| -> usize {
                knapsack_gcost(view.item(i).cost, budget, cell_eff, grid_eff)
            };
            let mut dp = vec![vec![0.0f64; width]; kmax + 1];
            let mut taken: Vec<Vec<bool>> = Vec::with_capacity(cand.len());
            for &i in &cand {
                let gc = gcost_eff(i);
                let w = view.item(i).weight;
                let mut tk = vec![false; (kmax + 1) * width];
                if gc <= grid_eff {
                    for j in (1..=kmax).rev() {
                        for c in (gc..width).rev() {
                            let candidate = dp[j - 1][c - gc] + w;
                            if candidate > dp[j][c] + DP_EPS {
                                dp[j][c] = candidate;
                                tk[j * width + c] = true;
                            }
                        }
                    }
                }
                taken.push(tk);
            }
            let (mut bj, mut bc, mut best) = (0usize, 0usize, 0.0f64);
            for (j, row) in dp.iter().enumerate() {
                for (c, &v) in row.iter().enumerate() {
                    if v > best + DP_EPS {
                        best = v;
                        bj = j;
                        bc = c;
                    }
                }
            }
            let mut selected = Vec::new();
            let mut j = bj;
            let mut c = bc;
            for t in (0..cand.len()).rev() {
                if j == 0 {
                    break;
                }
                if taken[t][j * width + c] {
                    let i = cand[t];
                    selected.push(i);
                    c -= gcost_eff(i);
                    j -= 1;
                }
            }
            selected
        }
    };
    let mut selected = selected;
    repair_overspend(view, &mut selected, budget, &mut RepairScratch::default());
    WdpSolution::from_view(view, selected)
}

/// Bit-packed per-(item, cell) flag matrix backing DP tracebacks, one
/// `u64` word per 64 cells. Owned by a [`SolverArena`] (or the pivot
/// engine's sweeps) and recycled via [`FlagTable::reset`] so steady-state
/// solves re-zero the same words instead of allocating a fresh
/// `Vec<Vec<bool>>` — 8× less traceback memory than byte flags, zero
/// mallocs once warm.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlagTable {
    words: Vec<u64>,
    row_words: usize,
}

impl FlagTable {
    /// Clears the table and resizes it to `rows` rows of `row_bits` flags,
    /// all zero. Reuses the existing word buffer when it is large enough.
    pub(crate) fn reset(&mut self, rows: usize, row_bits: usize) {
        self.row_words = row_bits.div_ceil(64);
        self.words.clear();
        self.words.resize(rows * self.row_words, 0);
    }

    #[inline]
    pub(crate) fn get(&self, row: usize, bit: usize) -> bool {
        self.words[row * self.row_words + (bit >> 6)] & (1u64 << (bit & 63)) != 0
    }

    /// One row's words, for branchless `|=` updates in DP inner loops.
    #[inline]
    pub(crate) fn row_mut(&mut self, row: usize) -> &mut [u64] {
        let start = row * self.row_words;
        &mut self.words[start..start + self.row_words]
    }
}

/// Sets flag bits `[from, to)` in a packed row (whole words in the middle,
/// masked edges), the traceback twin of a saturated-span fill.
#[inline]
fn set_bit_span(row: &mut [u64], from: usize, to: usize) {
    if from >= to {
        return;
    }
    let (fw, fb) = (from >> 6, from & 63);
    let (lw, lb) = ((to - 1) >> 6, (to - 1) & 63);
    let first = !0u64 << fb;
    let last = !0u64 >> (63 - lb);
    if fw == lw {
        row[fw] |= first & last;
    } else {
        row[fw] |= first;
        for word in &mut row[fw + 1..lw] {
            *word = !0;
        }
        row[lw] |= last;
    }
}

/// One 0/1-knapsack item step on a 1-D cost-grid DP row, bit-identical to
/// the textbook descending sweep
/// `for c in (gc..width).rev() { if dp[c-gc] + w > dp[c] + DP_EPS { … } }`
/// but restructured for the hot path:
///
/// * **Saturated span.** `dp` is constant (bitwise) for `c >= sat`, where
///   `sat` is the capped running sum of processed items' grid costs: above
///   the reachable cost prefix every state holds the same "take
///   everything so far" value. For `c >= sat + gc` both `dp[c-gc]` and
///   `dp[c]` are that constant, so the comparison has one answer for the
///   whole span — evaluate it once, then splat-store the (identical)
///   updated value and word-fill the traceback bits. Same comparison on
///   the same bits as the per-cell loop, so the DP trajectory is
///   unchanged.
/// * **Compare span.** Below the saturation point the exact per-cell loop
///   runs, with the conditional store kept *branchy* (stores are rare and
///   the branch predicts well; an unconditional select-store doubles
///   memory traffic and measures ~2× slower here) and traceback bits
///   accumulated in a register, one `|=` per 64-cell word.
///
/// `bit_base` offsets the traceback bit index (`bit_base + c`) so the 2-D
/// solver can pack its `j` planes into one row. Callers that do not track
/// saturation pass `sat = width` (pure compare span). Returns nothing;
/// advancing `sat` (`min(sat + gc, width - 1)`) is the caller's job since
/// it is per-item state, not per-plane.
#[inline]
pub(crate) fn knapsack_item_step_1d(
    dp: &mut [f64],
    row: &mut [u64],
    bit_base: usize,
    gc: usize,
    w: f64,
    sat: usize,
) {
    let width = dp.len();
    let uni = (sat + gc).min(width);
    if uni < width {
        // Representative cells: dp[uni] == dp[c] and dp[uni-gc] == dp[c-gc]
        // for every c in the span (both indices are >= sat).
        let candidate = dp[uni - gc] + w;
        if candidate > dp[uni] + DP_EPS {
            for v in dp[uni..].iter_mut() {
                *v = candidate;
            }
            set_bit_span(row, bit_base + uni, bit_base + width);
        }
    }
    // Exact per-cell sweep over (gc..uni), highest cells first (the same
    // order the one-piece legacy loop visits them in).
    let mut upper = uni;
    while upper > gc {
        let word = (bit_base + upper - 1) >> 6;
        let base = word << 6;
        let lower = gc.max(base.saturating_sub(bit_base));
        let mut bits = row[word];
        for c in (lower..upper).rev() {
            let candidate = dp[c - gc] + w;
            if candidate > dp[c] + DP_EPS {
                dp[c] = candidate;
                bits |= 1u64 << (bit_base + c - base);
            }
        }
        row[word] = bits;
        upper = lower;
    }
}

/// One item step of the count-capped 2-D knapsack DP (`dp` is `kmax + 1`
/// row-major planes of `width` cells; plane `j` reads plane `j - 1`).
/// Descending `j` so every read sees pre-item state, each plane stepped by
/// [`knapsack_item_step_1d`] against its predecessor. The saturation
/// invariant holds per plane with the same shared `sat` (the constraint
/// `cost <= c` is vacuous above the reachable prefix in every plane).
#[inline]
pub(crate) fn knapsack_item_step_2d(
    dp: &mut [f64],
    row: &mut [u64],
    width: usize,
    kmax: usize,
    gc: usize,
    w: f64,
    sat: usize,
) {
    for j in (1..=kmax).rev() {
        let (below, plane) = dp[(j - 1) * width..(j + 1) * width].split_at_mut(width);
        let uni = (sat + gc).min(width);
        let bit_base = j * width;
        if uni < width {
            let candidate = below[uni - gc] + w;
            if candidate > plane[uni] + DP_EPS {
                for v in plane[uni..].iter_mut() {
                    *v = candidate;
                }
                set_bit_span(row, bit_base + uni, bit_base + width);
            }
        }
        let mut upper = uni;
        while upper > gc {
            let word = (bit_base + upper - 1) >> 6;
            let base = word << 6;
            let lower = gc.max(base.saturating_sub(bit_base));
            let mut bits = row[word];
            for c in (lower..upper).rev() {
                let candidate = below[c - gc] + w;
                if candidate > plane[c] + DP_EPS {
                    plane[c] = candidate;
                    bits |= 1u64 << (bit_base + c - base);
                }
            }
            row[word] = bits;
            upper = lower;
        }
    }
}

/// Per-worker reconstruction scratch for leave-one-out pivot targets: the
/// selection being rebuilt plus its repair buffers. One lives in every
/// [`SolverArena`]; parallel pivot workers build their own.
#[derive(Debug, Clone, Default)]
pub(crate) struct LooScratch {
    pub(crate) selected: Vec<usize>,
    pub(crate) repair: RepairScratch,
}

/// Reusable solver workspace: flat DP rows, a bit-packed traceback, and
/// struct-of-arrays candidate lanes, all recycled across solves.
///
/// The arena path computes **bit-identical** results to the free-function
/// solvers ([`solve_view`]): it keeps the exact
/// `dp[c - gc] + w > dp[c] + DP_EPS` comparison, the same cell iteration
/// order, and the same ascending-index reconstruction — it only
/// restructures *where the bytes live and how the iteration space is
/// walked* (SoA lanes walked contiguously, the per-candidate `gc <= grid`
/// test hoisted out of the cell loop, the saturated high-cost span
/// collapsed to one representative comparison, traceback bits accumulated
/// per 64-cell word — see [`knapsack_item_step_1d`]). The
/// `arena_equivalence` differential suite pins that contract.
///
/// Reuse contract: keep one arena per worker. Serial callers
/// (`LOVM_THREADS=1`) that hold an arena across rounds reach zero
/// steady-state heap allocations per solve; parallel fan-outs give each
/// worker its own arena via [`par::Pool::run_with`], so no buffer is ever
/// shared and determinism is untouched (scratch never feeds an output
/// bit).
#[derive(Debug, Clone, Default)]
pub struct SolverArena {
    /// Candidate parent indices (ascending), the SoA "who" lane.
    pub(crate) cand: Vec<usize>,
    /// Grid-discretized costs, parallel to `cand`.
    pub(crate) gcosts: Vec<usize>,
    /// Selection weights, parallel to `cand`.
    pub(crate) weights: Vec<f64>,
    /// Flat DP value table (`rows * width` for the 2-D solver).
    pub(crate) dp: Vec<f64>,
    taken: FlagTable,
    /// Preference order for top-K solves.
    pub(crate) order: Vec<usize>,
    repair: RepairScratch,
    // Lanes below are the incremental pivot engine's (crate::pivots)
    // forward/backward merge workspace; they ride in the same arena so one
    // object threads through solve + payments.
    pub(crate) snap_pos: Vec<usize>,
    pub(crate) fwd_taken: FlagTable,
    pub(crate) bwd_taken: FlagTable,
    pub(crate) fwd_snap: Vec<f64>,
    pub(crate) bwd_snap: Vec<f64>,
    pub(crate) loo: LooScratch,
}

impl SolverArena {
    /// An empty arena; buffers grow on first use and are then recycled.
    pub fn new() -> Self {
        SolverArena::default()
    }

    /// [`SolverArena::solve_view_into`] returning an owned solution.
    pub fn solve_view(&mut self, view: &WdpView<'_>, kind: SolverKind) -> WdpSolution {
        let mut out = WdpSolution::default();
        self.solve_view_into(view, kind, &mut out);
        out
    }

    /// Solves a view into a caller-recycled solution, bit-identical to
    /// [`solve_view`] (same dispatch, same floats).
    ///
    /// The hot dispatches (top-K and knapsack — everything a LOVM round
    /// can hit) run entirely on arena buffers: zero heap allocations once
    /// `self` and `out` have warmed up. `Exhaustive` and `GreedyDensity`
    /// are cold experiment/baseline paths and delegate to the allocating
    /// free functions.
    pub fn solve_view_into(&mut self, view: &WdpView<'_>, kind: SolverKind, out: &mut WdpSolution) {
        // Per-`SolverKind` latency span; inert (no clock read) unless
        // telemetry is enabled. Handles live in leaked statics, so the
        // steady-state zero-allocation contract holds with telemetry on.
        let _solve_span = solver_kind_hist(kind).span();
        match kind {
            SolverKind::Exact => match view.budget() {
                None => self.top_k_into(view, out),
                Some(_) if view.len() <= 25 => copy_solution(exhaustive(view), out),
                Some(_) => self.knapsack_into(view, 4000, out),
            },
            SolverKind::Exhaustive => copy_solution(exhaustive(view), out),
            SolverKind::Knapsack { grid } => match view.budget() {
                Some(_) => self.knapsack_into(view, grid, out),
                None => self.top_k_into(view, out),
            },
            SolverKind::GreedyDensity => copy_solution(greedy_density(view), out),
        }
    }

    /// Arena twin of `top_k`: preference order into the recycled `order`
    /// lane, truncate to K, canonicalize.
    fn top_k_into(&mut self, view: &WdpView<'_>, out: &mut WdpSolution) {
        let k = view.max_winners().unwrap_or(view.len());
        fill_preference_order(view, &mut self.order);
        let take = k.min(self.order.len());
        out.selected.clear();
        out.selected.extend_from_slice(&self.order[..take]);
        finish_canonical(view, out);
    }

    /// Arena twin of `knapsack`: SoA lanes + flat tables + branchless
    /// inner loops, same floats in the same order.
    fn knapsack_into(&mut self, view: &WdpView<'_>, grid: usize, out: &mut WdpSolution) {
        let budget = view.budget().expect("knapsack requires a budget");
        assert!(grid >= 1, "grid must be at least 1");
        for i in view.indices() {
            let it = view.item(i);
            assert!(
                it.cost.is_finite() && it.cost >= 0.0,
                "knapsack requires non-negative finite costs"
            );
        }
        // Same filter as `knapsack_candidates`, into the recycled lane.
        self.cand.clear();
        self.cand.extend(
            view.indices()
                .filter(|&i| view.item(i).weight > 0.0 && view.item(i).cost <= budget + 1e-12),
        );
        let m = self.cand.len();
        if m == 0 {
            out.selected.clear();
            finish_canonical(view, out);
            return;
        }
        self.weights.clear();
        self.weights
            .extend(self.cand.iter().map(|&i| view.item(i).weight));
        match view.max_winners() {
            None => {
                let width = grid + 1;
                let cell = knapsack_cell(budget, grid);
                self.gcosts.clear();
                self.gcosts.extend(
                    self.cand
                        .iter()
                        .map(|&i| knapsack_gcost(view.item(i).cost, budget, cell, grid)),
                );
                self.dp.clear();
                self.dp.resize(width, 0.0);
                self.taken.reset(m, width);
                // `sat`: dp is constant (bitwise) from this index up — the
                // capped reachable-cost prefix (see knapsack_item_step_1d).
                let mut sat = 0usize;
                for t in 0..m {
                    let gc = self.gcosts[t];
                    // Hoisted unaffordability test: the legacy loop pushes
                    // an all-false traceback row in this case; here the
                    // reset table's row is already zero.
                    if gc > grid {
                        continue;
                    }
                    knapsack_item_step_1d(
                        &mut self.dp[..width],
                        self.taken.row_mut(t),
                        0,
                        gc,
                        self.weights[t],
                        sat,
                    );
                    sat = (sat + gc).min(width - 1);
                }
                let mut bc = 0usize;
                for (c, &v) in self.dp.iter().enumerate() {
                    if v > self.dp[bc] + DP_EPS {
                        bc = c;
                    }
                }
                out.selected.clear();
                let mut c = bc;
                for t in (0..m).rev() {
                    if self.taken.get(t, c) {
                        out.selected.push(self.cand[t]);
                        c -= self.gcosts[t];
                    }
                }
            }
            Some(k) => {
                let kmax = k.min(m);
                let width = knapsack_width_2d(m, kmax, grid);
                let grid_eff = width - 1;
                let cell_eff = knapsack_cell(budget, grid_eff);
                self.gcosts.clear();
                self.gcosts.extend(
                    self.cand
                        .iter()
                        .map(|&i| knapsack_gcost(view.item(i).cost, budget, cell_eff, grid_eff)),
                );
                let rows = kmax + 1;
                self.dp.clear();
                self.dp.resize(rows * width, 0.0);
                self.taken.reset(m, rows * width);
                let mut sat = 0usize;
                for t in 0..m {
                    let gc = self.gcosts[t];
                    if gc > grid_eff {
                        continue;
                    }
                    knapsack_item_step_2d(
                        &mut self.dp[..rows * width],
                        self.taken.row_mut(t),
                        width,
                        kmax,
                        gc,
                        self.weights[t],
                        sat,
                    );
                    sat = (sat + gc).min(width - 1);
                }
                // Flat row-major scan == legacy's (j outer, c inner) order.
                let (mut bj, mut bc, mut best) = (0usize, 0usize, 0.0f64);
                for (idx, &v) in self.dp.iter().enumerate() {
                    if v > best + DP_EPS {
                        best = v;
                        bj = idx / width;
                        bc = idx % width;
                    }
                }
                out.selected.clear();
                let (mut j, mut c) = (bj, bc);
                for t in (0..m).rev() {
                    if j == 0 {
                        break;
                    }
                    if self.taken.get(t, j * width + c) {
                        out.selected.push(self.cand[t]);
                        c -= self.gcosts[t];
                        j -= 1;
                    }
                }
            }
        }
        repair_overspend(view, &mut out.selected, budget, &mut self.repair);
        finish_canonical(view, out);
    }
}

/// Canonicalizes an in-place solution exactly like
/// [`WdpSolution::from_view`]: ascending indices, objective summed
/// left-to-right over that order.
pub(crate) fn finish_canonical(view: &WdpView<'_>, out: &mut WdpSolution) {
    out.selected.sort_unstable();
    out.objective = out.selected.iter().map(|&i| view.item(i).weight).sum();
}

/// Moves an owned solution into a recycled output slot (cold paths only).
fn copy_solution(sol: WdpSolution, out: &mut WdpSolution) {
    out.selected.clear();
    out.selected.extend_from_slice(&sol.selected);
    out.objective = sol.objective;
}

/// Greedy approximation: by weight when only cardinality binds, by
/// weight/cost density under a budget.
fn greedy_density(view: &WdpView<'_>) -> WdpSolution {
    let mut order: Vec<usize> = view
        .indices()
        .filter(|&i| view.item(i).weight > 0.0)
        .collect();
    match view.budget() {
        None => order.sort_by(|&a, &b| {
            view.item(b)
                .weight
                .partial_cmp(&view.item(a).weight)
                .expect("weights are finite")
        }),
        Some(_) => order.sort_by(|&a, &b| {
            let da = view.item(a).weight / view.item(a).cost.max(1e-12);
            let db = view.item(b).weight / view.item(b).cost.max(1e-12);
            db.partial_cmp(&da).expect("densities are finite")
        }),
    }
    let k = view.max_winners().unwrap_or(view.len());
    let mut selected = Vec::new();
    let mut spent = 0.0;
    for i in order {
        if selected.len() >= k {
            break;
        }
        if let Some(b) = view.budget() {
            if spent + view.item(i).cost > b + 1e-12 {
                continue;
            }
        }
        spent += view.item(i).cost;
        selected.push(i);
    }
    WdpSolution::from_view(view, selected)
}

/// Fractional (LP-relaxation) upper bound on the optimum of a
/// budget-constrained instance; equals the exact optimum when no budget is
/// present. Used as the denominator in competitive-ratio plots.
pub fn fractional_upper_bound(inst: &WdpInstance) -> f64 {
    match inst.budget {
        None => top_k(&WdpView::full(inst)).objective,
        Some(budget) => {
            let mut order: Vec<usize> = (0..inst.items.len())
                .filter(|&i| inst.items[i].weight > 0.0)
                .collect();
            order.sort_by(|&a, &b| {
                let da = inst.items[a].weight / inst.items[a].cost.max(1e-12);
                let db = inst.items[b].weight / inst.items[b].cost.max(1e-12);
                db.partial_cmp(&da).expect("densities are finite")
            });
            let k = inst.max_winners.unwrap_or(inst.items.len());
            let mut remaining = budget;
            let mut total = 0.0;
            let mut count = 0usize;
            for i in order {
                if count >= k || remaining <= 0.0 {
                    break;
                }
                let it = inst.items[i];
                if it.cost <= remaining {
                    total += it.weight;
                    remaining -= it.cost;
                    count += 1;
                } else if it.cost > 0.0 {
                    total += it.weight * remaining / it.cost;
                    remaining = 0.0;
                }
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rngs::StdRng, RngExt, SeedableRng};

    fn item(bidder: usize, weight: f64, cost: f64) -> WdpItem {
        WdpItem {
            bidder,
            weight,
            cost,
        }
    }

    #[test]
    fn top_k_selects_heaviest_positive() {
        let inst = WdpInstance::new(vec![
            item(0, 3.0, 1.0),
            item(1, -1.0, 1.0),
            item(2, 5.0, 1.0),
            item(3, 1.0, 1.0),
        ])
        .with_max_winners(2);
        let sol = solve(&inst, SolverKind::Exact);
        assert_eq!(sol.selected, vec![0, 2]);
        assert_eq!(sol.objective, 8.0);
    }

    #[test]
    fn unconstrained_takes_all_positive() {
        let inst = WdpInstance::new(vec![
            item(0, 1.0, 0.0),
            item(1, -2.0, 0.0),
            item(2, 0.5, 0.0),
        ]);
        let sol = solve(&inst, SolverKind::Exact);
        assert_eq!(sol.selected, vec![0, 2]);
    }

    #[test]
    fn exhaustive_respects_budget() {
        // Best unbudgeted = {0, 1} (weight 10), but budget only allows {1, 2}.
        let inst = WdpInstance::new(vec![
            item(0, 6.0, 10.0),
            item(1, 4.0, 4.0),
            item(2, 3.0, 3.0),
        ])
        .with_budget(8.0);
        let sol = solve(&inst, SolverKind::Exhaustive);
        assert_eq!(sol.selected, vec![1, 2]);
        assert_eq!(sol.objective, 7.0);
    }

    #[test]
    fn knapsack_matches_exhaustive_small() {
        let inst = WdpInstance::new(vec![
            item(0, 6.0, 10.0),
            item(1, 4.0, 4.0),
            item(2, 3.0, 3.0),
            item(3, 2.5, 2.0),
        ])
        .with_budget(9.0);
        let ex = solve(&inst, SolverKind::Exhaustive);
        let kn = solve(&inst, SolverKind::Knapsack { grid: 2000 });
        assert!((ex.objective - kn.objective).abs() < 0.05);
        assert!(inst.feasible(&kn.selected));
    }

    #[test]
    fn knapsack_with_cardinality() {
        let inst = WdpInstance::new(vec![
            item(0, 5.0, 1.0),
            item(1, 4.0, 1.0),
            item(2, 3.0, 1.0),
        ])
        .with_budget(10.0)
        .with_max_winners(2);
        let sol = solve(&inst, SolverKind::Knapsack { grid: 100 });
        assert_eq!(sol.selected, vec![0, 1]);
    }

    #[test]
    fn knapsack_zero_budget_only_free_items() {
        let inst = WdpInstance::new(vec![item(0, 5.0, 1.0), item(1, 2.0, 0.0)]).with_budget(0.0);
        let sol = solve(&inst, SolverKind::Knapsack { grid: 100 });
        assert_eq!(sol.selected, vec![1]);
    }

    #[test]
    fn greedy_density_feasible_and_reasonable() {
        let inst = WdpInstance::new(vec![
            item(0, 10.0, 10.0), // density 1.0
            item(1, 6.0, 3.0),   // density 2.0
            item(2, 5.0, 3.0),   // density 1.67
        ])
        .with_budget(6.0);
        let sol = solve(&inst, SolverKind::GreedyDensity);
        assert_eq!(sol.selected, vec![1, 2]);
        assert!(inst.feasible(&sol.selected));
    }

    #[test]
    fn fractional_bound_dominates_exact() {
        let inst = WdpInstance::new(vec![
            item(0, 6.0, 5.0),
            item(1, 4.0, 4.0),
            item(2, 3.0, 3.0),
        ])
        .with_budget(7.0);
        let exact = solve(&inst, SolverKind::Exhaustive);
        let bound = fractional_upper_bound(&inst);
        assert!(bound >= exact.objective - 1e-9);
    }

    #[test]
    fn without_item_shifts_indices() {
        let inst = WdpInstance::new(vec![
            item(0, 1.0, 1.0),
            item(1, 2.0, 2.0),
            item(2, 3.0, 3.0),
        ]);
        let reduced = inst.without_item(1);
        assert_eq!(reduced.items.len(), 2);
        assert_eq!(reduced.items[1].bidder, 2);
    }

    /// Property: the allocation-free skip view visits the same item
    /// sequence as the materialized `without_item` clone, so solving it is
    /// bit-identical — objective included — across all four constraint
    /// combos and every solver dispatch.
    #[test]
    fn skip_view_bit_identical_to_without_item() {
        let mut rng = StdRng::seed_from_u64(0x5C1B);
        for round in 0..60 {
            // Small n exercises the exhaustive dispatch (2ⁿ masks), larger
            // n the knapsack/top-K dispatch via an explicit grid kind.
            let small = rng.random();
            let n = if small {
                rng.random_range(2..11usize)
            } else {
                rng.random_range(28..50usize)
            };
            let items: Vec<WdpItem> = (0..n)
                .map(|i| item(i, rng.random_range(-3.0..9.0), rng.random_range(0.0..4.0)))
                .collect();
            let mut inst = WdpInstance::new(items);
            if rng.random() {
                inst = inst.with_max_winners(rng.random_range(1..8usize));
            }
            if rng.random() {
                inst = inst.with_budget(rng.random_range(0.0..12.0));
            }
            let kind = if small {
                SolverKind::Exact
            } else {
                SolverKind::Knapsack { grid: 300 }
            };
            for idx in 0..n {
                let cloned = solve(&inst.without_item(idx), kind);
                let viewed = solve_view(&WdpView::full(&inst).skipping(idx), kind);
                assert_eq!(
                    cloned.objective.to_bits(),
                    viewed.objective.to_bits(),
                    "round {round} idx {idx}: clone {} vs view {}",
                    cloned.objective,
                    viewed.objective
                );
                assert_eq!(cloned.selected.len(), viewed.selected.len());
            }
        }
    }

    /// A subset view solves exactly the materialized sub-instance: same
    /// winner set (mapped through the subset) and bit-identical objective.
    #[test]
    fn subset_view_matches_materialized_subinstance() {
        let mut rng = StdRng::seed_from_u64(0x50B5);
        for _ in 0..40 {
            // Subsets stay ≤ ~16 items so the budgeted Exact dispatch
            // (exhaustive) remains cheap.
            let n = rng.random_range(4..32usize);
            let items: Vec<WdpItem> = (0..n)
                .map(|i| item(i, rng.random_range(-2.0..8.0), rng.random_range(0.1..3.0)))
                .collect();
            let mut inst = WdpInstance::new(items).with_max_winners(rng.random_range(1..6usize));
            if rng.random() {
                inst = inst.with_budget(rng.random_range(0.5..10.0));
            }
            let subset: Vec<usize> = (0..n)
                .filter(|_| rng.random_range(0..2usize) == 0)
                .take(16)
                .collect();
            let materialized = WdpInstance {
                items: subset.iter().map(|&i| inst.items[i]).collect(),
                max_winners: inst.max_winners,
                budget: inst.budget,
            };
            let sub_sol = solve(&materialized, SolverKind::Exact);
            let view_sol = solve_view(&WdpView::of_subset(&inst, &subset), SolverKind::Exact);
            assert_eq!(
                sub_sol.objective.to_bits(),
                view_sol.objective.to_bits(),
                "objectives diverged"
            );
            let mapped: Vec<usize> = sub_sol.selected.iter().map(|&p| subset[p]).collect();
            assert_eq!(mapped, view_sol.selected, "selections diverged");
        }
    }

    #[test]
    fn view_len_and_iteration_respect_skip() {
        let inst = WdpInstance::new(vec![
            item(0, 1.0, 1.0),
            item(1, 2.0, 1.0),
            item(2, 3.0, 1.0),
            item(3, 4.0, 1.0),
        ]);
        let full = WdpView::full(&inst);
        assert_eq!(full.len(), 4);
        assert_eq!(full.indices().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let skipped = full.skipping(2);
        assert_eq!(skipped.len(), 3);
        assert_eq!(skipped.indices().collect::<Vec<_>>(), vec![0, 1, 3]);
        let subset = [1usize, 2, 3];
        let sub = WdpView::of_subset(&inst, &subset).skipping(3);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.indices().collect::<Vec<_>>(), vec![1, 2]);
        assert!(!sub.is_empty());
    }

    #[test]
    fn empty_instance_empty_solution() {
        let inst = WdpInstance::new(vec![]);
        for kind in [
            SolverKind::Exact,
            SolverKind::Exhaustive,
            SolverKind::GreedyDensity,
        ] {
            let sol = solve(&inst, kind);
            assert!(sol.selected.is_empty());
            assert_eq!(sol.objective, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "exhaustive solver limited")]
    fn exhaustive_size_guard() {
        let items: Vec<WdpItem> = (0..30).map(|i| item(i, 1.0, 1.0)).collect();
        let _ = solve(&WdpInstance::new(items), SolverKind::Exhaustive);
    }

    /// Property: exact dispatch must match brute force on small instances
    /// (seeded random instances).
    #[test]
    fn exact_matches_exhaustive() {
        let mut rng = StdRng::seed_from_u64(0xE8AC);
        for _ in 0..150 {
            let n = rng.random_range(1..10usize);
            let items: Vec<WdpItem> = (0..n)
                .map(|i| item(i, rng.random_range(-5.0..10.0), rng.random_range(0.0..5.0)))
                .collect();
            let k = rng.random_range(1..6usize);
            let use_budget: bool = rng.random();
            let mut inst = WdpInstance::new(items).with_max_winners(k);
            if use_budget {
                inst = inst.with_budget(rng.random_range(0.0..15.0));
            }
            let exact = solve(&inst, SolverKind::Exact);
            let brute = solve(&inst, SolverKind::Exhaustive);
            // Knapsack grid rounding may lose a sliver of objective; the
            // no-budget path must be exactly optimal.
            let tol = if use_budget { 0.1 } else { 1e-9 };
            assert!(
                exact.objective >= brute.objective - tol,
                "exact {} < brute {}",
                exact.objective,
                brute.objective
            );
            assert!(inst.feasible(&exact.selected));
        }
    }

    /// Boundary behaviour of the grid discretizer: exact cell edges floor
    /// onto the edge, unaffordable items land strictly past `grid_eff`,
    /// and a zero budget admits only zero-cost items.
    #[test]
    fn gcost_boundaries() {
        let budget = 10.0;
        let grid_eff = 100usize;
        let cell = knapsack_cell(budget, grid_eff);
        assert_eq!(cell, 0.1);
        // Cost exactly on a cell edge: 2.0 / 0.1 = 20.0 floors to cell 20,
        // not 19 or 21 — the pack stays representable without rounding up.
        assert_eq!(knapsack_gcost(2.0, budget, cell, grid_eff), 20);
        // Cost equal to the whole budget occupies the last cell, still
        // affordable.
        assert_eq!(knapsack_gcost(budget, budget, cell, grid_eff), grid_eff);
        // Just inside an edge floors down to the previous cell.
        assert_eq!(
            knapsack_gcost(0.1 * 20.0 - 1e-9, budget, cell, grid_eff),
            19
        );
        // Cost above the budget grid-rounds past grid_eff, so the DP's
        // `gc <= grid` guard (and the arena's hoisted twin) skips it.
        assert!(knapsack_gcost(10.5, budget, cell, grid_eff) > grid_eff);
        // Zero budget: any positive cost is "never fits" = grid_eff + 1,
        // zero cost occupies cell 0.
        assert_eq!(
            knapsack_gcost(0.5, 0.0, knapsack_cell(0.0, grid_eff), grid_eff),
            grid_eff + 1
        );
        assert_eq!(
            knapsack_gcost(0.0, 0.0, knapsack_cell(0.0, grid_eff), grid_eff),
            0
        );
    }

    /// Boundary behaviour of the 2-D table sizing: small shapes keep the
    /// full grid, absurd shapes coarsen to the memory cap, and the width
    /// never collapses below the 64-cell floor.
    #[test]
    fn width_2d_coarsening_edges() {
        // Small instance, kmax = 1: full width survives.
        assert_eq!(knapsack_width_2d(10, 1, 4000), 4001);
        // Exactly at the cap: 2 * 2 * width <= 1<<28 holds for width
        // (1<<26), so no coarsening.
        assert_eq!(knapsack_width_2d(2, 1, (1 << 26) - 1), 1 << 26);
        // Absurd n × grid: 4096 candidates × kmax 15 over a 2²⁰ grid
        // coarsens the width to max_cells / (n * (kmax + 1)).
        let w = knapsack_width_2d(1 << 12, 15, 1 << 20);
        assert_eq!(w, (1usize << 28) / ((1 << 12) * 16));
        assert_eq!(w, 4096);
        // Degenerate overload: the 64-cell floor wins over the quotient.
        assert_eq!(knapsack_width_2d(1 << 24, 63, 4000), 64);
        // kmax = 1 with a huge candidate pool: quotient 32 is clamped up
        // to the 64-cell floor.
        assert_eq!(knapsack_width_2d(1 << 22, 1, 1 << 10), 64);
    }

    /// The arena solver matches the legacy free functions bit-for-bit on
    /// hand-built boundary instances (the big seeded sweep lives in
    /// tests/arena_equivalence.rs).
    #[test]
    fn arena_matches_legacy_on_boundaries() {
        let mut arena = SolverArena::new();
        let cases = [
            WdpInstance::new(vec![item(0, 5.0, 1.0), item(1, 2.0, 0.0)]).with_budget(0.0),
            WdpInstance::new(vec![
                item(0, 6.0, 10.0),
                item(1, 4.0, 4.0),
                item(2, 3.0, 3.0),
                item(3, 2.5, 2.0),
            ])
            .with_budget(9.0),
            WdpInstance::new(vec![
                item(0, 5.0, 1.0),
                item(1, 4.0, 1.0),
                item(2, 3.0, 1.0),
            ])
            .with_budget(10.0)
            .with_max_winners(2),
            WdpInstance::new(vec![item(0, 3.0, 1.0), item(1, 5.0, 1.0)]).with_max_winners(1),
            WdpInstance::new(vec![]),
        ];
        for inst in &cases {
            for kind in [SolverKind::Exact, SolverKind::Knapsack { grid: 100 }] {
                let legacy = solve(inst, kind);
                let view = WdpView::full(inst);
                let fresh = arena.solve_view(&view, kind);
                assert_eq!(legacy.selected, fresh.selected);
                assert_eq!(legacy.objective.to_bits(), fresh.objective.to_bits());
                // Second solve through the now-warm arena: recycled
                // buffers must not leak state between solves.
                let warm = arena.solve_view(&view, kind);
                assert_eq!(legacy.selected, warm.selected);
                assert_eq!(legacy.objective.to_bits(), warm.objective.to_bits());
            }
        }
    }

    /// Property: greedy is always feasible and never exceeds the exact
    /// optimum (seeded random instances).
    #[test]
    fn greedy_feasible_and_bounded() {
        let mut rng = StdRng::seed_from_u64(0x62EE);
        for _ in 0..150 {
            let n = rng.random_range(1..12usize);
            let items: Vec<WdpItem> = (0..n)
                .map(|i| item(i, rng.random_range(0.1..10.0), rng.random_range(0.1..5.0)))
                .collect();
            let budget = rng.random_range(1.0..20.0f64);
            let inst = WdpInstance::new(items).with_budget(budget);
            let greedy = solve(&inst, SolverKind::GreedyDensity);
            let brute = solve(&inst, SolverKind::Exhaustive);
            assert!(inst.feasible(&greedy.selected));
            assert!(greedy.objective <= brute.objective + 1e-9);
            let bound = fractional_upper_bound(&inst);
            assert!(bound >= brute.objective - 1e-9);
        }
    }
}
