//! Executable mechanism-design property checks.
//!
//! These are used three ways: in unit/property tests of this crate, in the
//! integration suite, and by the experiment harness (E4/E5) to *measure*
//! truthfulness and individual rationality rather than assume them.

use crate::bid::Bid;
use crate::outcome::AuctionOutcome;

/// Checks individual rationality at reported costs: every winner is paid at
/// least its reported cost (within `tol`).
pub fn individually_rational(outcome: &AuctionOutcome, tol: f64) -> bool {
    outcome.winners.iter().all(|w| w.payment >= w.cost - tol)
}

/// Quasi-linear utility of `bidder` with true cost `true_cost` under an
/// outcome produced from (possibly misreported) bids.
pub fn utility(outcome: &AuctionOutcome, bidder: usize, true_cost: f64) -> f64 {
    match outcome.payment_of(bidder) {
        Some(p) => p - true_cost,
        None => 0.0,
    }
}

/// Result of probing one bidder's incentive to misreport.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthfulnessReport {
    /// Bidder probed.
    pub bidder: usize,
    /// Utility when reporting the true cost.
    pub truthful_utility: f64,
    /// Best utility found over all probed misreports.
    pub best_misreport_utility: f64,
    /// The misreport factor achieving it (report = factor × true cost).
    pub best_factor: f64,
    /// Per-factor utilities, aligned with the probed factor grid.
    pub utilities: Vec<(f64, f64)>,
}

impl TruthfulnessReport {
    /// Maximum gain achievable by lying (≤ tol for a truthful mechanism).
    pub fn max_gain(&self) -> f64 {
        self.best_misreport_utility - self.truthful_utility
    }

    /// Whether no probed misreport improved utility by more than `tol`.
    pub fn is_truthful(&self, tol: f64) -> bool {
        self.max_gain() <= tol
    }
}

/// Probes whether `bidder_index` can gain by scaling its reported cost by
/// each factor in `factors`, holding other bids fixed.
///
/// `mechanism` maps a full bid profile to an outcome; it is re-run once per
/// factor plus once truthfully.
///
/// # Panics
///
/// Panics if `bidder_index` is out of range or a factor produces a negative
/// report.
pub fn probe_truthfulness<F>(
    bids: &[Bid],
    bidder_index: usize,
    factors: &[f64],
    mechanism: F,
) -> TruthfulnessReport
where
    F: Fn(&[Bid]) -> AuctionOutcome,
{
    let true_bid = bids[bidder_index];
    let true_cost = true_bid.cost;
    let truthful_outcome = mechanism(bids);
    let truthful_utility = utility(&truthful_outcome, true_bid.bidder, true_cost);

    let mut utilities = Vec::with_capacity(factors.len());
    let mut best_misreport_utility = f64::NEG_INFINITY;
    let mut best_factor = 1.0;
    for &f in factors {
        let mut profile = bids.to_vec();
        profile[bidder_index] = true_bid.with_cost(true_cost * f);
        let out = mechanism(&profile);
        let u = utility(&out, true_bid.bidder, true_cost);
        utilities.push((f, u));
        if u > best_misreport_utility {
            best_misreport_utility = u;
            best_factor = f;
        }
    }
    if factors.is_empty() {
        best_misreport_utility = truthful_utility;
    }
    TruthfulnessReport {
        bidder: true_bid.bidder,
        truthful_utility,
        best_misreport_utility,
        best_factor,
        utilities,
    }
}

/// Standard misreport factor grid used by the harness: 0.25× to 4× the true
/// cost.
pub fn default_factor_grid() -> Vec<f64> {
    vec![
        0.25, 0.5, 0.75, 0.9, 0.95, 1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 3.0, 4.0,
    ]
}

/// Checks that total expenditure across rounds stays within `budget` (within
/// `tol`).
pub fn budget_feasible(outcomes: &[AuctionOutcome], budget: f64, tol: f64) -> bool {
    let spend: f64 = outcomes.iter().map(|o| o.total_payment()).sum();
    spend <= budget + tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valuation::{ClientValue, Valuation};
    use crate::vcg::{VcgAuction, VcgConfig};

    fn setup() -> (Vec<Bid>, Valuation, VcgAuction) {
        let bids = vec![
            Bid::new(0, 2.0, 10, 1.0),
            Bid::new(1, 3.0, 12, 0.9),
            Bid::new(2, 1.0, 4, 0.8),
            Bid::new(3, 6.0, 9, 1.0),
        ];
        let valuation = Valuation::Linear(ClientValue {
            value_per_unit: 1.0,
            base_value: 0.0,
        });
        let auction = VcgAuction::new(VcgConfig {
            value_weight: 1.0,
            cost_weight: 1.0,
            max_winners: Some(2),
            ..VcgConfig::default()
        });
        (bids, valuation, auction)
    }

    #[test]
    fn vcg_outcome_is_ir() {
        let (bids, v, a) = setup();
        let o = a.run(&bids, &v);
        assert!(individually_rational(&o, 1e-9));
    }

    #[test]
    fn vcg_is_truthful_on_probe_grid() {
        let (bids, v, a) = setup();
        for i in 0..bids.len() {
            let report = probe_truthfulness(&bids, i, &default_factor_grid(), |b| a.run(b, &v));
            assert!(
                report.is_truthful(1e-9),
                "bidder {i} gains {} by factor {}",
                report.max_gain(),
                report.best_factor
            );
        }
    }

    #[test]
    fn first_price_rule_is_not_truthful() {
        // Pay-your-bid with the same allocation: overbidding must help, and
        // the probe must detect it.
        let (bids, v, a) = setup();
        let first_price = |b: &[Bid]| {
            let mut o = a.run(b, &v);
            for w in &mut o.winners {
                w.payment = w.cost;
            }
            o
        };
        let report = probe_truthfulness(&bids, 0, &default_factor_grid(), first_price);
        assert!(report.max_gain() > 0.1, "gain {}", report.max_gain());
        assert!(report.best_factor > 1.0);
    }

    #[test]
    fn utility_zero_for_losers() {
        let (bids, v, a) = setup();
        let o = a.run(&bids, &v);
        assert_eq!(utility(&o, 3, 6.0), 0.0);
    }

    #[test]
    fn budget_feasibility_check() {
        let (bids, v, a) = setup();
        let o = a.run(&bids, &v);
        let spend = o.total_payment();
        assert!(budget_feasible(std::slice::from_ref(&o), spend + 1.0, 0.0));
        assert!(!budget_feasible(&[o.clone(), o], spend, 1e-9));
    }

    /// Property: DSIC on random instances — no bidder in a random market
    /// can gain by any probed misreport under the exact top-K VCG auction
    /// (seeded random instances).
    #[test]
    fn vcg_truthful_on_random_instances() {
        use simrng::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xD51C);
        for _ in 0..40 {
            let n = rng.random_range(2..10usize);
            let bids: Vec<Bid> = (0..n)
                .map(|i| {
                    Bid::new(
                        i,
                        rng.random_range(0.05..5.0),
                        rng.random_range(1..40usize),
                        rng.random_range(0.1..1.0),
                    )
                })
                .collect();
            let valuation = Valuation::Linear(ClientValue {
                value_per_unit: 0.5,
                base_value: 0.2,
            });
            let auction = VcgAuction::new(VcgConfig {
                value_weight: rng.random_range(0.5..20.0),
                cost_weight: rng.random_range(0.5..5.0),
                max_winners: Some(rng.random_range(1..5usize)),
                ..VcgConfig::default()
            });
            let outcome = auction.run(&bids, &valuation);
            assert!(individually_rational(&outcome, 1e-9));
            for i in 0..bids.len() {
                let report = probe_truthfulness(&bids, i, &default_factor_grid(), |b| {
                    auction.run(b, &valuation)
                });
                assert!(
                    report.is_truthful(1e-9),
                    "bidder {} gains {} (factor {})",
                    i,
                    report.max_gain(),
                    report.best_factor
                );
            }
        }
    }

    /// Property: losers never pay / never receive — probing a random loser
    /// yields zero utility at truth, and winners' utilities are
    /// non-negative (seeded random instances).
    #[test]
    fn vcg_utility_structure_random() {
        use simrng::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x07EC);
        for _ in 0..200 {
            let n = rng.random_range(2..8usize);
            let seed_data = rng.random_range(1..30usize);
            let bids: Vec<Bid> = (0..n)
                .map(|i| Bid::new(i, rng.random_range(0.05..5.0), seed_data + i, 0.9))
                .collect();
            let valuation = Valuation::Linear(ClientValue {
                value_per_unit: 0.3,
                base_value: 0.1,
            });
            let auction = VcgAuction::new(VcgConfig::default());
            let o = auction.run(&bids, &valuation);
            for b in &bids {
                let u = utility(&o, b.bidder, b.cost);
                if o.is_winner(b.bidder) {
                    assert!(u >= -1e-9);
                } else {
                    assert!(u == 0.0);
                }
            }
        }
    }

    /// Property: DSIC survives the incremental payment engine — on random
    /// markets where the feasible set is report-independent (top-K cap,
    /// budget present in the code path but never binding), the misreport
    /// grid peaks at the truthful report when payments come from
    /// `PaymentStrategy::Incremental`; with a *binding* budget the feasible
    /// set depends on the reports (truthfulness is out of scope there), but
    /// individual rationality must still hold (seeded random instances).
    #[test]
    fn budgeted_vcg_incremental_truthful_on_probe_grid() {
        use crate::pivots::PaymentStrategy;
        use crate::wdp::SolverKind;
        use simrng::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x17C0);
        for _ in 0..15 {
            let n = rng.random_range(2..9usize);
            let bids: Vec<Bid> = (0..n)
                .map(|i| {
                    Bid::new(
                        i,
                        rng.random_range(0.1..4.0),
                        rng.random_range(5..40usize),
                        rng.random_range(0.3..1.0),
                    )
                })
                .collect();
            let valuation = Valuation::Linear(ClientValue {
                value_per_unit: 0.4,
                base_value: 0.2,
            });
            let auction = VcgAuction::new(VcgConfig {
                value_weight: rng.random_range(1.0..15.0),
                cost_weight: rng.random_range(0.5..4.0),
                max_winners: Some(rng.random_range(1..5usize)),
                ..VcgConfig::default()
            });
            // Far above any sum of (even 4×-misreported) costs: exercises
            // the budgeted engine without letting the budget bind. (At
            // these sizes the incremental dispatcher takes its naive
            // fallback — the merge-path version of this property is
            // `incremental_merge_engine_truthful_with_slack_budget`.)
            let slack_budget = 1e6;
            let mech = |b: &[Bid]| {
                auction.run_with_budget_strategy_on(
                    b,
                    &valuation,
                    slack_budget,
                    SolverKind::Exact,
                    PaymentStrategy::Incremental,
                    par::Pool::serial(),
                )
            };
            assert!(individually_rational(&mech(&bids), 1e-9));
            for i in 0..bids.len() {
                let report = probe_truthfulness(&bids, i, &default_factor_grid(), mech);
                assert!(
                    report.is_truthful(1e-9),
                    "bidder {i} gains {} under the incremental engine",
                    report.max_gain()
                );
            }
            // Binding budget: IR still holds (the clamped pivot keeps every
            // payment at or above the reported cost).
            let tight = auction.run_with_budget_strategy_on(
                &bids,
                &valuation,
                rng.random_range(0.5..4.0),
                SolverKind::Exact,
                PaymentStrategy::Incremental,
                par::Pool::serial(),
            );
            assert!(individually_rational(&tight, 1e-9));
        }
    }

    /// Property: DSIC through the forward/backward *merge* engine itself —
    /// above the exhaustive-dispatch boundary (n > 26) the incremental
    /// strategy runs the DP merge, and with a slack budget every cost
    /// rounds to grid cell 0, so the DP is exactly optimal and the
    /// misreport grid must peak at truth to machine precision. IR likewise
    /// (seeded random instances).
    #[test]
    fn incremental_merge_engine_truthful_with_slack_budget() {
        use crate::pivots::PaymentStrategy;
        use crate::wdp::SolverKind;
        use simrng::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x3E116E);
        for _ in 0..4 {
            let n = rng.random_range(28..34usize);
            let bids: Vec<Bid> = (0..n)
                .map(|i| {
                    Bid::new(
                        i,
                        rng.random_range(0.1..3.0),
                        rng.random_range(10..120usize),
                        rng.random_range(0.3..1.0),
                    )
                })
                .collect();
            let valuation = Valuation::Linear(ClientValue {
                value_per_unit: 0.2,
                base_value: 0.2,
            });
            let auction = VcgAuction::new(VcgConfig {
                value_weight: rng.random_range(2.0..20.0),
                cost_weight: rng.random_range(0.5..3.0),
                max_winners: None,
                ..VcgConfig::default()
            });
            let mech = |b: &[Bid]| {
                auction.run_with_budget_strategy_on(
                    b,
                    &valuation,
                    1e6,
                    SolverKind::Exact,
                    PaymentStrategy::Incremental,
                    par::Pool::serial(),
                )
            };
            assert!(individually_rational(&mech(&bids), 1e-9));
            // Probing every bidder would re-run the mechanism 14·n times;
            // a seeded handful per market keeps the test quick while still
            // covering winners and losers across markets.
            for _ in 0..5 {
                let i = rng.random_range(0..n);
                let report = probe_truthfulness(&bids, i, &default_factor_grid(), mech);
                assert!(
                    report.is_truthful(1e-9),
                    "bidder {i} gains {} through the merge engine",
                    report.max_gain()
                );
            }
        }
    }

    /// Property: the incremental engine's *incentive profile* matches the
    /// naive engine's bit for bit — every probed misreport yields the same
    /// utility under both strategies, even on the grid-approximate knapsack
    /// path where neither is exactly truthful. Individual rationality holds
    /// under both (seeded random instances).
    #[test]
    fn incremental_engine_preserves_incentives_bitwise_on_knapsack_path() {
        use crate::pivots::PaymentStrategy;
        use crate::wdp::SolverKind;
        use simrng::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xB175);
        for round in 0..6 {
            let n = rng.random_range(28..44usize);
            let bids: Vec<Bid> = (0..n)
                .map(|i| {
                    Bid::new(
                        i,
                        rng.random_range(0.1..3.0),
                        rng.random_range(20..200usize),
                        rng.random_range(0.4..1.0),
                    )
                })
                .collect();
            let valuation = Valuation::Linear(ClientValue {
                value_per_unit: 0.1,
                base_value: 0.3,
            });
            let auction = VcgAuction::new(VcgConfig {
                value_weight: 20.0,
                cost_weight: 2.0,
                max_winners: None,
                ..VcgConfig::default()
            });
            let budget = 0.4 * bids.iter().map(|b| b.cost).sum::<f64>();
            let run = |strategy: PaymentStrategy| {
                move |b: &[Bid]| {
                    auction.run_with_budget_strategy_on(
                        b,
                        &valuation,
                        budget,
                        SolverKind::Exact,
                        strategy,
                        par::Pool::serial(),
                    )
                }
            };
            assert!(individually_rational(
                &run(PaymentStrategy::Incremental)(&bids),
                1e-9
            ));
            let probe_target = rng.random_range(0..n);
            let grid = default_factor_grid();
            let naive = probe_truthfulness(&bids, probe_target, &grid, run(PaymentStrategy::Naive));
            let incremental = probe_truthfulness(
                &bids,
                probe_target,
                &grid,
                run(PaymentStrategy::Incremental),
            );
            assert_eq!(
                naive.truthful_utility.to_bits(),
                incremental.truthful_utility.to_bits(),
                "truthful utility diverged, round {round}"
            );
            for ((f_n, u_n), (f_i, u_i)) in naive.utilities.iter().zip(&incremental.utilities) {
                assert_eq!(f_n, f_i);
                assert_eq!(
                    u_n.to_bits(),
                    u_i.to_bits(),
                    "utility at factor {f_n} diverged, round {round}"
                );
            }
        }
    }

    /// Property: DSIC and IR survive the *sealed streaming* path and the
    /// sharded topology — bids routed through a [`crate::sealed::SealedRound`]
    /// (the canonicalization every streamed round passes before the
    /// auction) and solved under `Sharded{8}` peak the misreport grid at
    /// truth, and the sharded outcome is bit-identical to the monolithic
    /// one on the same sealed set (seeded random instances). This pins the
    /// truthfulness theorem for the pipeline the adversary simulator
    /// attacks, not just monolithic batch rounds.
    #[test]
    fn vcg_truthful_and_ir_through_sealed_round_and_sharded_topology() {
        use crate::sealed::SealedRound;
        use crate::shard::MarketTopology;
        use simrng::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5EA1);
        for _ in 0..25 {
            let n = rng.random_range(2..12usize);
            let bids: Vec<Bid> = (0..n)
                .map(|i| {
                    Bid::new(
                        i,
                        rng.random_range(0.05..5.0),
                        rng.random_range(1..40usize),
                        rng.random_range(0.1..1.0),
                    )
                })
                .collect();
            let valuation = Valuation::Linear(ClientValue {
                value_per_unit: 0.5,
                base_value: 0.2,
            });
            let config = VcgConfig {
                value_weight: rng.random_range(0.5..20.0),
                cost_weight: rng.random_range(0.5..5.0),
                max_winners: Some(rng.random_range(1..5usize)),
                ..VcgConfig::default()
            };
            let on_topology = |topology: MarketTopology| {
                let auction = VcgAuction::new(VcgConfig { topology, ..config });
                move |profile: &[Bid]| {
                    // The streaming adapter: every round is canonicalized
                    // by SealedRound (sorted by bidder, uniqueness checked)
                    // before it reaches the auction.
                    let sealed = SealedRound::new(0, profile.to_vec());
                    auction.run(sealed.bids(), &valuation)
                }
            };
            let sharded = on_topology(MarketTopology::Sharded { count: 8 });
            let mono = on_topology(MarketTopology::Monolithic);
            let outcome = sharded(&bids);
            assert!(individually_rational(&outcome, 1e-9));
            assert_eq!(
                outcome,
                mono(&bids),
                "sharded reconciliation must be bit-identical to monolithic"
            );
            for i in 0..bids.len() {
                let report = probe_truthfulness(&bids, i, &default_factor_grid(), sharded);
                assert!(
                    report.is_truthful(1e-9),
                    "bidder {i} gains {} (factor {}) through the sealed sharded path",
                    report.max_gain(),
                    report.best_factor
                );
            }
        }
    }

    #[test]
    fn report_grid_alignment() {
        let (bids, v, a) = setup();
        let grid = vec![0.5, 1.0, 2.0];
        let report = probe_truthfulness(&bids, 0, &grid, |b| a.run(b, &v));
        assert_eq!(report.utilities.len(), 3);
        assert_eq!(report.utilities[1].0, 1.0);
        // Utility at factor 1.0 equals the truthful utility.
        assert!((report.utilities[1].1 - report.truthful_utility).abs() < 1e-12);
    }
}
