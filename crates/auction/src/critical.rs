//! Myerson critical-value payments for monotone allocation rules.
//!
//! A deterministic allocation rule is *monotone* (in a reverse auction) if a
//! winner keeps winning when it lowers its reported cost. By Myerson's
//! characterization, such a rule paired with the *critical value* — the
//! supremum reported cost at which the bidder still wins — is truthful.
//! Greedy baselines (which are monotone but not welfare-optimal, so Clarke
//! payments would not be truthful for them) use this module.

use crate::bid::Bid;

/// Computes the critical value for `bidder_index` under the allocation rule
/// `wins(bids) -> bool` by bisection over the reported cost.
///
/// Returns `None` if the bidder loses even when bidding 0 (it has no
/// critical value), otherwise the cost threshold within `tol`.
///
/// The rule must be monotone; this is not checked (use
/// [`is_monotone_for`] in tests).
///
/// # Panics
///
/// Panics if `upper` is not positive/finite or `tol` is not positive.
pub fn critical_value<F>(
    bids: &[Bid],
    bidder_index: usize,
    upper: f64,
    tol: f64,
    wins: F,
) -> Option<f64>
where
    F: Fn(&[Bid]) -> bool,
{
    assert!(upper.is_finite() && upper > 0.0, "upper must be positive");
    assert!(tol > 0.0, "tol must be positive");
    let probe = |cost: f64| {
        let mut b = bids.to_vec();
        b[bidder_index] = b[bidder_index].with_cost(cost);
        wins(&b)
    };
    if !probe(0.0) {
        return None;
    }
    if probe(upper) {
        // Wins even at the cap: critical value is at least `upper`.
        return Some(upper);
    }
    let (mut lo, mut hi) = (0.0f64, upper);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if probe(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Empirically checks monotonicity of an allocation rule for one bidder:
/// winning at cost `c` must imply winning at every lower probed cost.
pub fn is_monotone_for<F>(bids: &[Bid], bidder_index: usize, costs: &[f64], wins: F) -> bool
where
    F: Fn(&[Bid]) -> bool,
{
    let mut sorted = costs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
    let mut seen_loss = false;
    for &c in &sorted {
        let mut b = bids.to_vec();
        b[bidder_index] = b[bidder_index].with_cost(c);
        let w = wins(&b);
        if seen_loss && w {
            return false;
        }
        if !w {
            seen_loss = true;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bids() -> Vec<Bid> {
        vec![
            Bid::new(0, 2.0, 10, 1.0),
            Bid::new(1, 3.0, 10, 1.0),
            Bid::new(2, 5.0, 10, 1.0),
        ]
    }

    /// Toy monotone rule: the two cheapest bids win.
    fn two_cheapest(target: usize) -> impl Fn(&[Bid]) -> bool {
        move |bs: &[Bid]| {
            let mut order: Vec<usize> = (0..bs.len()).collect();
            order.sort_by(|&a, &b| bs[a].cost.partial_cmp(&bs[b].cost).unwrap());
            order[..2].contains(&target)
        }
    }

    #[test]
    fn critical_value_is_third_price() {
        // Bidder 0 wins while its cost stays below the 2nd-cheapest rival (5.0).
        let cv = critical_value(&bids(), 0, 100.0, 1e-6, two_cheapest(0)).unwrap();
        assert!((cv - 5.0).abs() < 1e-4, "critical value {cv}");
    }

    #[test]
    fn loser_with_zero_bid_has_none() {
        // A rule that never selects bidder 2.
        let never = |_: &[Bid]| false;
        assert_eq!(critical_value(&bids(), 2, 10.0, 1e-6, never), None);
    }

    #[test]
    fn always_winner_hits_upper() {
        let always = |_: &[Bid]| true;
        assert_eq!(critical_value(&bids(), 0, 10.0, 1e-6, always), Some(10.0));
    }

    #[test]
    fn monotonicity_check_passes_for_monotone_rule() {
        let probe_costs: Vec<f64> = (0..40).map(|i| i as f64 * 0.25).collect();
        assert!(is_monotone_for(&bids(), 0, &probe_costs, two_cheapest(0)));
    }

    #[test]
    fn monotonicity_check_catches_non_monotone() {
        // Pathological rule: bidder 0 wins only on a middle band of costs.
        let band = |bs: &[Bid]| (2.5..4.5).contains(&bs[0].cost);
        let probe_costs: Vec<f64> = (0..40).map(|i| i as f64 * 0.25).collect();
        assert!(!is_monotone_for(&bids(), 0, &probe_costs, band));
    }

    #[test]
    fn critical_payment_makes_rule_truthful() {
        // Utility when reporting r with true cost c: wins(r) * (cv - c).
        // For any monotone rule + critical payment, truthful report maximizes.
        let true_cost = 2.0;
        let rule = two_cheapest(0);
        let utility = |report: f64| -> f64 {
            let mut b = bids();
            b[0] = b[0].with_cost(report);
            if rule(&b) {
                let cv = critical_value(&b, 0, 100.0, 1e-6, two_cheapest(0)).unwrap();
                cv - true_cost
            } else {
                0.0
            }
        };
        let truthful = utility(true_cost);
        for report in [0.0, 1.0, 3.0, 4.9, 5.1, 8.0] {
            assert!(
                utility(report) <= truthful + 1e-4,
                "misreport {report} beats truth"
            );
        }
    }
}
