//! Auction outcomes: who won, what they are paid.

/// One winner's award.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Award {
    /// Winning bidder id.
    pub bidder: usize,
    /// The bidder's *reported* cost.
    pub cost: f64,
    /// Platform value attributed to this bidder.
    pub value: f64,
    /// Payment the platform transfers to the bidder.
    pub payment: f64,
}

/// Result of one auction round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuctionOutcome {
    /// Winning bidders with their payments (sorted by bidder id).
    pub winners: Vec<Award>,
    /// Objective achieved in the (virtual-)score space the WDP maximized.
    pub virtual_welfare: f64,
}

impl AuctionOutcome {
    /// Creates an outcome, sorting winners by bidder id.
    pub fn new(mut winners: Vec<Award>, virtual_welfare: f64) -> Self {
        winners.sort_by_key(|w| w.bidder);
        AuctionOutcome {
            winners,
            virtual_welfare,
        }
    }

    /// Whether `bidder` won.
    pub fn is_winner(&self, bidder: usize) -> bool {
        self.winners.iter().any(|w| w.bidder == bidder)
    }

    /// Payment to `bidder`, or `None` if it lost.
    pub fn payment_of(&self, bidder: usize) -> Option<f64> {
        self.winners
            .iter()
            .find(|w| w.bidder == bidder)
            .map(|w| w.payment)
    }

    /// Sum of winner platform values.
    pub fn total_value(&self) -> f64 {
        self.winners.iter().map(|w| w.value).sum()
    }

    /// Sum of winner *reported* costs.
    pub fn total_cost(&self) -> f64 {
        self.winners.iter().map(|w| w.cost).sum()
    }

    /// Sum of payments (the platform's expenditure this round).
    pub fn total_payment(&self) -> f64 {
        self.winners.iter().map(|w| w.payment).sum()
    }

    /// Social welfare at reported costs: value minus cost (payments are
    /// internal transfers and cancel out).
    pub fn social_welfare(&self) -> f64 {
        self.total_value() - self.total_cost()
    }

    /// Platform (auctioneer) utility: value minus expenditure.
    pub fn platform_utility(&self) -> f64 {
        self.total_value() - self.total_payment()
    }

    /// Winning bidder ids, ascending.
    pub fn winner_ids(&self) -> Vec<usize> {
        self.winners.iter().map(|w| w.bidder).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> AuctionOutcome {
        AuctionOutcome::new(
            vec![
                Award {
                    bidder: 5,
                    cost: 2.0,
                    value: 6.0,
                    payment: 3.0,
                },
                Award {
                    bidder: 1,
                    cost: 1.0,
                    value: 4.0,
                    payment: 1.5,
                },
            ],
            7.0,
        )
    }

    #[test]
    fn winners_sorted_by_id() {
        let o = outcome();
        assert_eq!(o.winner_ids(), vec![1, 5]);
    }

    #[test]
    fn aggregates() {
        let o = outcome();
        assert_eq!(o.total_value(), 10.0);
        assert_eq!(o.total_cost(), 3.0);
        assert_eq!(o.total_payment(), 4.5);
        assert_eq!(o.social_welfare(), 7.0);
        assert_eq!(o.platform_utility(), 5.5);
    }

    #[test]
    fn lookups() {
        let o = outcome();
        assert!(o.is_winner(1));
        assert!(!o.is_winner(2));
        assert_eq!(o.payment_of(5), Some(3.0));
        assert_eq!(o.payment_of(9), None);
    }

    #[test]
    fn default_is_empty() {
        let o = AuctionOutcome::default();
        assert!(o.winners.is_empty());
        assert_eq!(o.social_welfare(), 0.0);
    }
}
