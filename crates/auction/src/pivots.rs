//! Incremental leave-one-out welfare engine for Clarke pivots.
//!
//! VCG payments need, for every winner `i`, the optimal welfare `W*₋ᵢ` of
//! the instance with `i` excluded. Re-solving the winner-determination
//! problem from scratch per winner costs `n` full solves — O(n² log n) for
//! top-K instances and O(n²·G) for the budgeted knapsack — and dominates
//! every round. This module computes the same quantities incrementally:
//!
//! * **Top-K / unconstrained** (no budget): one stable sort of the full
//!   preference order. Removing one item never reorders the rest, so each
//!   reduced optimum is a splice of that single order — the surviving
//!   winners plus the first displaced candidate. O(n log n + n·K) total.
//! * **Budgeted knapsack**: one forward and one backward DP sweep over the
//!   candidate sequence, then a per-winner merge of `prefix[i−1] ⊕
//!   suffix[i+1]` over the cost grid. O(n·G) table work total instead of
//!   O(n²·G), with the per-winner merges fanned out on [`par::Pool`].
//!
//! **Bit-compatibility contract.** The engine is drop-in for the naive
//! re-solve: `W*₋ᵢ` (and hence every payment) is bit-identical to
//! `solve(inst.without_item(i), kind).objective`. This works because the
//! engine never sums welfare from precomputed aggregates — it determines
//! the reduced instance's *selected set* incrementally and then recomputes
//! the objective exactly the way [`crate::wdp`] does: canonical
//! ascending-index order, left-to-right float adds, identical candidate
//! filter / grid rounding / budget-repair code. The differential suite
//! (`tests/pivot_equivalence.rs`) pins this across all four constraint
//! combinations. Solver kinds the engine has no incremental formulation
//! for (exhaustive, greedy, or instances crossing the exhaustive-dispatch
//! size boundary) transparently fall back to the naive re-solve,
//! preserving the contract trivially.
//!
//! Scope of the guarantee: the top-K path is unconditionally bit-identical
//! (a stable sort makes every reduced order a splice of the full one, ties
//! included). The budgeted DP-merge path guarantees bit-identity whenever
//! the reduced instance's optimal *selection* is unique at the DP's
//! comparison epsilon — always the case for cost/weight draws from
//! continuous distributions, which is what LOVM markets produce. On
//! adversarially tied instances (distinct subsets with exactly equal
//! welfare, e.g. duplicated integer weights) the naive sequential DP and
//! the prefix/suffix merge may break the tie toward different — equally
//! DP-optimal — selections, and once budget repair acts on those different
//! sets the welfares and payments need no longer agree at all.

use crate::wdp::{
    fill_preference_order, knapsack_cell, knapsack_gcost, knapsack_item_step_1d,
    knapsack_item_step_2d, knapsack_width_2d, repair_overspend, solve_view, FlagTable, LooScratch,
    SolverArena, SolverKind, WdpInstance, WdpView, DP_EPS,
};

/// How `W*₋ᵢ` pivot welfares are computed for payments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PaymentStrategy {
    /// Re-solve the reduced instance from scratch for every pivot — the
    /// textbook O(n) independent solves. Kept as the differential-testing
    /// reference and for odd solver kinds.
    Naive,
    /// Incremental leave-one-out engine (the default): shared sorted-order
    /// / DP-table passes, per-pivot merge. Bit-identical to [`Self::Naive`].
    #[default]
    Incremental,
}

/// [`leave_one_out_welfares_on`] on the [`par::Pool::auto`] pool.
pub fn leave_one_out_welfares(
    inst: &WdpInstance,
    targets: &[usize],
    kind: SolverKind,
    strategy: PaymentStrategy,
) -> Vec<f64> {
    leave_one_out_welfares_on(inst, targets, kind, strategy, par::Pool::auto())
}

/// Computes `W*₋ᵢ = solve(inst.without_item(i), kind).objective` for every
/// `i` in `targets` (indices into `inst.items`), in target order.
///
/// With `PaymentStrategy::Incremental` the result is bit-identical to the
/// naive per-target re-solve (see module docs) at a fraction of the cost.
/// Per-target work is fanned out on `pool`; output does not depend on the
/// worker count.
pub fn leave_one_out_welfares_on(
    inst: &WdpInstance,
    targets: &[usize],
    kind: SolverKind,
    strategy: PaymentStrategy,
    pool: par::Pool,
) -> Vec<f64> {
    leave_one_out_welfares_view_on(&WdpView::full(inst), targets, kind, strategy, pool)
}

/// [`leave_one_out_welfares_on`] generalized to a sub-instance view:
/// `W*₋ᵢ` of the view with target `i` (a parent index that must be a view
/// member) excluded. This is what the shard pipeline (`crate::shard`) runs
/// per shard and over the champion pool, and what lets the naive engine
/// skip an item without the O(n) `without_item` clone.
pub fn leave_one_out_welfares_view_on(
    view: &WdpView<'_>,
    targets: &[usize],
    kind: SolverKind,
    strategy: PaymentStrategy,
    pool: par::Pool,
) -> Vec<f64> {
    let mut arena = SolverArena::new();
    let mut out = Vec::new();
    leave_one_out_welfares_view_into(view, targets, kind, strategy, pool, &mut arena, &mut out);
    out
}

/// [`leave_one_out_welfares_view_on`] into caller-recycled buffers: the
/// pivot lanes of `arena` hold every DP table, snapshot, and
/// reconstruction buffer, and `out` receives one welfare per target (in
/// target order, cleared first).
///
/// A serial caller (`LOVM_THREADS=1`) that keeps `arena` and `out` alive
/// across rounds runs the hot engines (top-K splice, budgeted DP merge)
/// with zero steady-state heap allocations. Parallel per-target fan-out
/// gives each worker its own [`LooScratch`] via [`par::Pool::run_with`],
/// so no buffer is shared and — per the pool's determinism contract — the
/// welfares are bit-identical at any worker count. The `Naive` strategy
/// and the fallback paths still allocate per call; they are reference /
/// cold paths.
pub fn leave_one_out_welfares_view_into(
    view: &WdpView<'_>,
    targets: &[usize],
    kind: SolverKind,
    strategy: PaymentStrategy,
    pool: par::Pool,
    arena: &mut SolverArena,
    out: &mut Vec<f64>,
) {
    // One LOO pivot pass per call: the `solve.pivots_ns` span covers the
    // whole engine (every strategy funnels through here). Inert unless
    // telemetry is enabled; records only wall time, never an output bit.
    let _pivots_span = telemetry::hist!("solve.pivots_ns").span();
    match strategy {
        PaymentStrategy::Naive => {
            out.clear();
            out.append(&mut naive_loo(view, targets, kind, pool));
        }
        PaymentStrategy::Incremental => match (view.budget(), kind) {
            (None, SolverKind::Exact) | (None, SolverKind::Knapsack { .. }) => {
                topk_loo(view, targets, pool, arena, out)
            }
            (Some(_), SolverKind::Knapsack { grid }) => {
                merge_loo(view, targets, grid, kind, pool, arena, out)
            }
            // `Exact` dispatches reduced instances of ≤ 25 items to
            // exhaustive search; the DP merge only mirrors the knapsack
            // path, so it applies once every reduced instance is knapsack-
            // dispatched (n − 1 > 25).
            (Some(_), SolverKind::Exact) if view.len() > 26 => {
                merge_loo(view, targets, 4000, kind, pool, arena, out)
            }
            _ => {
                out.clear();
                out.append(&mut naive_loo(view, targets, kind, pool));
            }
        },
    }
}

/// The reference engine: one full re-solve per excluded target, each on an
/// allocation-free skip view (bit-identical to re-solving the materialized
/// `without_item` clone — same item sequence, same float order).
fn naive_loo(view: &WdpView<'_>, targets: &[usize], kind: SolverKind, pool: par::Pool) -> Vec<f64> {
    pool.map(targets, |&i| solve_view(&view.skipping(i), kind).objective)
}

/// Incremental engine for instances without a budget constraint.
///
/// `top_k` sorts the positive-weight items by descending weight (index
/// ascending on ties — the stable order) and truncates; removing any
/// single item never changes the relative order of the rest, so every
/// reduced optimum reads directly off the full order: the surviving top-K
/// plus (when the cap was binding) the first displaced candidate.
///
/// The order lives in `arena.order`; per-target reconstruction uses the
/// worker's [`LooScratch`], and the final sum is the canonical
/// ascending-index left-to-right fold `WdpSolution::from_view` computes.
fn topk_loo(
    view: &WdpView<'_>,
    targets: &[usize],
    pool: par::Pool,
    arena: &mut SolverArena,
    out: &mut Vec<f64>,
) {
    match view.max_winners() {
        None => {
            // Reduced optimum = every positive item except the target.
            // Filtered in index order, which *is* the canonical order, so
            // each pivot is one allocation-free skip-one fold.
            arena.order.clear();
            arena
                .order
                .extend(view.indices().filter(|&i| view.item(i).weight > 0.0));
            let positives = &arena.order;
            pool.run_with(targets.len(), &mut arena.loo, LooScratch::default, out, {
                |_scratch, ti| {
                    let t = targets[ti];
                    positives
                        .iter()
                        .filter(|&&i| i != t)
                        .map(|&i| view.item(i).weight)
                        .sum()
                }
            });
        }
        Some(k) => {
            fill_preference_order(view, &mut arena.order);
            let order = &arena.order;
            pool.run_with(targets.len(), &mut arena.loo, LooScratch::default, out, {
                |scratch: &mut LooScratch, ti| {
                    let t = targets[ti];
                    let pos = order.iter().position(|&i| i == t);
                    scratch.selected.clear();
                    match pos {
                        Some(p) if p < k => {
                            // The target was in the money: the other
                            // winners stay and the first displaced
                            // candidate (if any) slides in.
                            scratch.selected.extend(
                                order[..k.min(order.len())]
                                    .iter()
                                    .copied()
                                    .filter(|&i| i != t),
                            );
                            if let Some(&d) = order.get(k) {
                                scratch.selected.push(d);
                            }
                        }
                        // The target never won (or has non-positive
                        // weight): removing it leaves the top-K untouched.
                        _ => scratch
                            .selected
                            .extend_from_slice(&order[..k.min(order.len())]),
                    }
                    // Canonical objective: ascending-index, left-to-right
                    // sum — exactly what `WdpSolution::from_view` computes
                    // for the reduced view.
                    scratch.selected.sort_unstable();
                    scratch.selected.iter().map(|&i| view.item(i).weight).sum()
                }
            });
        }
    }
}

/// Incremental engine for budgeted instances: forward/backward knapsack DP
/// tables over the candidate sequence, merged per target.
///
/// The reduced instance's candidate roster is the full roster minus the
/// target, in the same order, with the same grid geometry, so the naive
/// LOO DP's state after the prefix is exactly the forward table — the
/// merge only has to pick the optimal budget split between prefix and
/// suffix and reconstruct each half from its taken flags. The reconstructed
/// set is re-summed canonically, which is what makes the result
/// bit-identical to the naive re-solve rather than merely equal to
/// float noise.
fn merge_loo(
    view: &WdpView<'_>,
    targets: &[usize],
    grid: usize,
    kind: SolverKind,
    pool: par::Pool,
    arena: &mut SolverArena,
    out: &mut Vec<f64>,
) {
    let budget = view.budget().expect("merge engine requires a budget");
    assert!(grid >= 1, "grid must be at least 1");
    for i in view.indices() {
        let it = view.item(i);
        assert!(
            it.cost.is_finite() && it.cost >= 0.0,
            "knapsack requires non-negative finite costs"
        );
    }
    let SolverArena {
        cand,
        gcosts,
        weights,
        dp,
        snap_pos,
        fwd_taken,
        bwd_taken,
        fwd_snap,
        bwd_snap,
        loo,
        ..
    } = arena;
    // Same filter as `wdp::knapsack_candidates`, into the arena's SoA
    // lane — both engines must see the exact same item roster.
    cand.clear();
    cand.extend(
        view.indices()
            .filter(|&i| view.item(i).weight > 0.0 && view.item(i).cost <= budget + 1e-12),
    );
    let m = cand.len();

    // The reduced instance drops one candidate, so its DP geometry is
    // computed from m − 1 candidates — identical for every target.
    let loo_len = m.saturating_sub(1);
    let (kmax, width) = match view.max_winners() {
        None => (None, grid + 1),
        Some(k) => {
            let km = k.min(loo_len);
            (Some(km), knapsack_width_2d(loo_len, km, grid))
        }
    };
    let rows = kmax.map_or(1, |k| k + 1);
    let grid_eff = width - 1;
    let cell = knapsack_cell(budget, grid_eff);
    gcosts.clear();
    gcosts.extend(
        cand.iter()
            .map(|&i| knapsack_gcost(view.item(i).cost, budget, cell, grid_eff)),
    );
    weights.clear();
    weights.extend(cand.iter().map(|&i| view.item(i).weight));

    // Table-size guard: past this the snapshot/flag memory outweighs the
    // saved solves, so hand the job back to the reference engine.
    snap_pos.clear();
    snap_pos.extend(targets.iter().filter_map(|&t| cand.binary_search(&t).ok()));
    snap_pos.sort_unstable();
    snap_pos.dedup();
    let cells = rows * width;
    if m.saturating_mul(cells) > (1 << 28) || snap_pos.len().saturating_mul(cells) > (1 << 24) {
        out.clear();
        out.append(&mut naive_loo(view, targets, kind, pool));
        return;
    }

    // Any target that is not a knapsack candidate leaves the DP unchanged:
    // its reduced optimum is the full optimum (computed over the same
    // candidate roster, hence the same floats). Cold path — LOVM targets
    // are winners, which are always candidates — so the extra legacy
    // solve's allocations don't touch the steady state.
    let full_objective = if targets.iter().any(|&t| cand.binary_search(&t).is_err()) {
        solve_view(view, SolverKind::Knapsack { grid }).objective
    } else {
        0.0
    };
    if m == 0 {
        out.clear();
        out.extend(targets.iter().map(|_| full_objective));
        return;
    }

    // Forward sweep: fwd state before processing cand[p] is bit-identical
    // to the naive LOO DP's state after the prefix cand[0..p] (same items,
    // same order, same update rule). Backward sweep mirrors it from the
    // end, so the snapshot at p covers exactly the suffix cand[p+1..].
    // Snapshots are rows of one flat arena buffer (`snaps * cells`).
    let snaps = snap_pos.len();
    fwd_taken.reset(m, cells);
    fwd_snap.clear();
    fwd_snap.resize(snaps * cells, 0.0);
    dp.clear();
    dp.resize(cells, 0.0);
    let mut sat = 0usize;
    for t in 0..m {
        if let Ok(s) = snap_pos.binary_search(&t) {
            fwd_snap[s * cells..(s + 1) * cells].copy_from_slice(dp);
        }
        sat = knapsack_step(dp, fwd_taken, t, gcosts[t], weights[t], kmax, sat);
    }
    bwd_taken.reset(m, cells);
    bwd_snap.clear();
    bwd_snap.resize(snaps * cells, 0.0);
    dp.clear();
    dp.resize(cells, 0.0);
    let mut sat = 0usize;
    for t in (0..m).rev() {
        if let Ok(s) = snap_pos.binary_search(&t) {
            bwd_snap[s * cells..(s + 1) * cells].copy_from_slice(dp);
        }
        sat = knapsack_step(dp, bwd_taken, t, gcosts[t], weights[t], kmax, sat);
    }

    // Per-target merge: pick the best prefix/suffix split of the budget
    // (and of the winner count, when capped), reconstruct both halves from
    // their flags in the naive walk's descending order, repair, re-sum.
    // Shared-borrow the tables for the fan-out; each worker reconstructs
    // into its own `LooScratch`.
    let (cand, gcosts, snap_pos) = (&*cand, &*gcosts, &*snap_pos);
    let (fwd_taken, bwd_taken) = (&*fwd_taken, &*bwd_taken);
    let (fwd_snap, bwd_snap) = (&*fwd_snap, &*bwd_snap);
    pool.run_with(targets.len(), loo, LooScratch::default, out, {
        |scratch: &mut LooScratch, ti| {
            let t = targets[ti];
            let Ok(p) = cand.binary_search(&t) else {
                return full_objective;
            };
            if m == 1 {
                // Reduced instance has no candidates at all. (Summed, not
                // a literal zero: an empty float sum is −0.0 and the
                // contract is bit-identity.)
                scratch.selected.clear();
                return scratch.selected.iter().map(|&i| view.item(i).weight).sum();
            }
            let s = snap_pos
                .binary_search(&p)
                .expect("snapshot recorded for every candidate target");
            let fs = &fwd_snap[s * cells..(s + 1) * cells];
            let bs = &bwd_snap[s * cells..(s + 1) * cells];

            // Best split, scanned low-to-high with the DP's
            // strict-improvement epsilon. Both tables are monotone in count
            // and cost, so each prefix state pairs with the full remaining
            // capacity.
            let mut best = f64::NEG_INFINITY;
            let (mut bj1, mut bc1) = (0usize, 0usize);
            for j1 in 0..rows {
                let j2 = rows - 1 - j1;
                for c1 in 0..width {
                    let v = fs[j1 * width + c1] + bs[j2 * width + (grid_eff - c1)];
                    if v > best + DP_EPS {
                        best = v;
                        bj1 = j1;
                        bc1 = c1;
                    }
                }
            }

            // Suffix walk (forward through items, as the backward table
            // was built last-item-first), then reversed in place so the
            // combined vector is in the naive reconstruction's descending
            // item order.
            scratch.selected.clear();
            {
                let mut j = rows - 1 - bj1;
                let mut c = grid_eff - bc1;
                for q in (p + 1)..m {
                    if kmax.is_some() && j == 0 {
                        break;
                    }
                    let row = if kmax.is_some() { j } else { 0 };
                    if bwd_taken.get(q, row * width + c) {
                        scratch.selected.push(cand[q]);
                        c -= gcosts[q];
                        j = j.saturating_sub(1);
                    }
                }
                scratch.selected.reverse();
            }
            {
                let mut j = bj1;
                let mut c = bc1;
                for q in (0..p).rev() {
                    if kmax.is_some() && j == 0 {
                        break;
                    }
                    let row = if kmax.is_some() { j } else { 0 };
                    if fwd_taken.get(q, row * width + c) {
                        scratch.selected.push(cand[q]);
                        c -= gcosts[q];
                        j = j.saturating_sub(1);
                    }
                }
            }
            repair_overspend(view, &mut scratch.selected, budget, &mut scratch.repair);
            // Canonical objective: ascending-index, left-to-right sum.
            scratch.selected.sort_unstable();
            scratch.selected.iter().map(|&i| view.item(i).weight).sum()
        }
    });
}

/// One knapsack DP item update (shared by both sweeps): the classic
/// reverse-cell relaxation, with a count dimension when `kmax` is set.
/// Identical update rule and epsilon to `wdp::knapsack`, executed through
/// the shared hot kernels (`wdp::knapsack_item_step_{1d,2d}`: saturated
/// high-span splat, branchy compare span, word-grouped traceback bits).
/// `sat` is the caller-tracked saturation index (capped running sum of
/// processed items' grid costs); returns the advanced value.
fn knapsack_step(
    dp: &mut [f64],
    tk: &mut FlagTable,
    item_row: usize,
    gcost: usize,
    weight: f64,
    kmax: Option<usize>,
    sat: usize,
) -> usize {
    let rows = kmax.map_or(1, |k| k + 1);
    let width = dp.len() / rows;
    let grid_eff = width - 1;
    if gcost > grid_eff {
        return sat;
    }
    let row = tk.row_mut(item_row);
    match kmax {
        None => knapsack_item_step_1d(dp, row, 0, gcost, weight, sat),
        Some(kmax) => knapsack_item_step_2d(dp, row, width, kmax, gcost, weight, sat),
    }
    (sat + gcost).min(width - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wdp::{solve, WdpItem};
    use simrng::{rngs::StdRng, RngExt, SeedableRng};

    fn item(bidder: usize, weight: f64, cost: f64) -> WdpItem {
        WdpItem {
            bidder,
            weight,
            cost,
        }
    }

    fn assert_bits_equal(a: &[f64], b: &[f64], context: &str) {
        assert_eq!(a.len(), b.len(), "{context}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: target {i} incremental {x} vs naive {y}"
            );
        }
    }

    fn both(inst: &WdpInstance, targets: &[usize], kind: SolverKind) -> (Vec<f64>, Vec<f64>) {
        let pool = par::Pool::serial();
        (
            leave_one_out_welfares_on(inst, targets, kind, PaymentStrategy::Incremental, pool),
            leave_one_out_welfares_on(inst, targets, kind, PaymentStrategy::Naive, pool),
        )
    }

    #[test]
    fn topk_displacement_pivot() {
        // Weights 8, 5, 3; K = 2 → winners {0, 1}; removing a winner
        // promotes item 2.
        let inst = WdpInstance::new(vec![
            item(0, 8.0, 1.0),
            item(1, 5.0, 1.0),
            item(2, 3.0, 1.0),
        ])
        .with_max_winners(2);
        let (inc, naive) = both(&inst, &[0, 1], SolverKind::Exact);
        assert_bits_equal(&inc, &naive, "topk displacement");
        assert_eq!(inc, vec![5.0 + 3.0, 8.0 + 3.0]);
    }

    #[test]
    fn unconstrained_pivot_drops_only_target() {
        let inst = WdpInstance::new(vec![
            item(0, 2.5, 1.0),
            item(1, -1.0, 1.0),
            item(2, 4.25, 1.0),
        ]);
        let (inc, naive) = both(&inst, &[0, 2], SolverKind::Exact);
        assert_bits_equal(&inc, &naive, "unconstrained");
        assert_eq!(inc, vec![4.25, 2.5]);
    }

    #[test]
    fn loser_target_leaves_topk_unchanged() {
        let inst = WdpInstance::new(vec![
            item(0, 8.0, 1.0),
            item(1, 5.0, 1.0),
            item(2, 3.0, 1.0),
        ])
        .with_max_winners(2);
        let (inc, naive) = both(&inst, &[2], SolverKind::Exact);
        assert_bits_equal(&inc, &naive, "loser target");
        assert_eq!(inc, vec![13.0]);
    }

    #[test]
    fn merge_engine_single_candidate_reduces_to_empty() {
        let inst = WdpInstance::new(vec![item(0, 3.1, 1.3), item(1, -2.0, 0.5)]).with_budget(4.0);
        let (inc, naive) = both(&inst, &[0], SolverKind::Knapsack { grid: 64 });
        assert_bits_equal(&inc, &naive, "single candidate");
        assert_eq!(inc, vec![0.0]);
    }

    #[test]
    fn merge_engine_matches_naive_on_random_budgeted_instances() {
        let mut rng = StdRng::seed_from_u64(0x9107_5EED);
        for round in 0..40 {
            let n = rng.random_range(2..30usize);
            let items: Vec<WdpItem> = (0..n)
                .map(|i| item(i, rng.random_range(-2.0..9.0), rng.random_range(0.01..4.0)))
                .collect();
            let budget = rng.random_range(0.5..8.0);
            let grid = rng.random_range(32..400usize);
            let mut inst = WdpInstance::new(items).with_budget(budget);
            if rng.random() {
                inst = inst.with_max_winners(rng.random_range(1..8usize));
            }
            let kind = SolverKind::Knapsack { grid };
            let sol = solve(&inst, kind);
            let (inc, naive) = both(&inst, &sol.selected, kind);
            assert_bits_equal(&inc, &naive, &format!("random budgeted round {round}"));
        }
    }

    #[test]
    fn zero_budget_keeps_free_items_only() {
        let inst = WdpInstance::new(vec![
            item(0, 5.5, 1.0),
            item(1, 2.25, 0.0),
            item(2, 1.125, 0.0),
        ])
        .with_budget(0.0);
        let kind = SolverKind::Knapsack { grid: 50 };
        let sol = solve(&inst, kind);
        assert_eq!(sol.selected, vec![1, 2]);
        let (inc, naive) = both(&inst, &sol.selected, kind);
        assert_bits_equal(&inc, &naive, "zero budget");
        assert_eq!(inc, vec![1.125, 2.25]);
    }

    #[test]
    fn non_candidate_target_returns_full_objective() {
        // Item 1 has negative weight: never a candidate, so excluding it
        // changes nothing.
        let inst = WdpInstance::new(vec![
            item(0, 3.3, 1.0),
            item(1, -1.0, 1.0),
            item(2, 2.2, 1.0),
        ])
        .with_budget(5.0);
        let kind = SolverKind::Knapsack { grid: 100 };
        let full = solve(&inst, kind).objective;
        let (inc, naive) = both(&inst, &[1], kind);
        assert_bits_equal(&inc, &naive, "non-candidate");
        assert_eq!(inc[0].to_bits(), full.to_bits());
    }

    #[test]
    fn exhaustive_kind_falls_back_to_naive() {
        let inst = WdpInstance::new(vec![
            item(0, 6.0, 10.0),
            item(1, 4.0, 4.0),
            item(2, 3.0, 3.0),
        ])
        .with_budget(8.0);
        let (inc, naive) = both(&inst, &[1, 2], SolverKind::Exhaustive);
        assert_bits_equal(&inc, &naive, "exhaustive fallback");
    }

    #[test]
    fn pool_fanout_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(0xFA11);
        let items: Vec<WdpItem> = (0..40)
            .map(|i| item(i, rng.random_range(0.1..9.0), rng.random_range(0.05..3.0)))
            .collect();
        let inst = WdpInstance::new(items).with_budget(12.0);
        let kind = SolverKind::Knapsack { grid: 256 };
        let sol = solve(&inst, kind);
        let serial = leave_one_out_welfares_on(
            &inst,
            &sol.selected,
            kind,
            PaymentStrategy::Incremental,
            par::Pool::serial(),
        );
        let pooled = leave_one_out_welfares_on(
            &inst,
            &sol.selected,
            kind,
            PaymentStrategy::Incremental,
            par::Pool::with_threads(4),
        );
        assert_bits_equal(&pooled, &serial, "pool fanout");
    }
}
