//! Sharded market engine: partition → per-shard solve → champion
//! reconciliation.
//!
//! A monolithic winner determination over `n = 10⁶` bidders cannot hold
//! one knapsack DP table (memory) or one global sort (latency budget) per
//! round. This module splits the market into [`MarketTopology::Sharded`]
//! shards by a seeded, *stable* hash of the bidder id, solves each shard's
//! WDP — and its incremental leave-one-out pivots — independently on
//! [`par::Pool`], and then reconciles: a top-level WDP over the
//! concatenated **shard champions** (each shard's winners plus its first
//! displaced candidate) picks the final winners, and the incremental pivot
//! engine prices them on that same champion pool. Peak memory is bounded
//! by the largest shard plus the champion pool, never by `n`.
//!
//! **Exactness.** For the no-budget (top-K) markets the LOVM round loop
//! runs, reconciliation over champions is *bit-identical* to the
//! monolithic solve at any shard count: the global top-K is contained in
//! the union of per-shard top-Ks (an item's rank within its shard never
//! exceeds its global rank), the globally (K+1)-th item — the one every
//! pivot prices against — is always some shard's winner or first displaced
//! candidate, and all welfare sums are re-accumulated in ascending parent
//! index order, the canonical float order every solver shares. The
//! `sharding` test suite pins this, which is what lets `LOVM_SHARDS`
//! re-run the entire golden corpus unchanged.
//!
//! **Approximation.** Under a budget constraint the pipeline is a
//! principled heuristic: each shard proposes its best feasible set under
//! the *full* budget, and reconciliation re-optimizes over proposals. A
//! globally optimal pack whose members are individually mediocre inside
//! their shards can lose mass, so sharded welfare may trail the monolithic
//! optimum; the measured gap `ε` (sharded ≥ (1 − ε)·monolithic) is pinned
//! by the property suite and reported by `exp_e14_sharding`. `Sharded{1}`
//! always degrades to the monolithic path exactly.

use crate::pivots::{leave_one_out_welfares_view_into, PaymentStrategy};
use crate::wdp::{SolverArena, SolverKind, WdpInstance, WdpSolution, WdpView};

/// Name of the environment variable selecting the default shard count for
/// the LOVM round loop (`LOVM_SHARDS=8`; unset or `1` mean monolithic;
/// anything unparseable — including `0` — panics at startup rather than
/// silently running monolithic).
pub const SHARDS_ENV: &str = "LOVM_SHARDS";

/// Seed of the stable bidder → shard hash. Fixed so a bidder's shard never
/// changes between rounds (mechanism stability: a bidder cannot steer its
/// shard by re-bidding).
pub const SHARD_SEED: u64 = 0x4C4F_564D_0E14_5EED;

/// How the per-round market is laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MarketTopology {
    /// One global winner determination (the paper's mechanism verbatim).
    #[default]
    Monolithic,
    /// Partition into `count` shards, solve independently, reconcile over
    /// shard champions. `count ≤ 1` is identical to [`Self::Monolithic`].
    Sharded {
        /// Number of shards the population is hashed into.
        count: usize,
    },
}

impl MarketTopology {
    /// Topology from the `LOVM_SHARDS` environment variable: `Sharded`
    /// for values ≥ 2, `Monolithic` when unset or set to `1`.
    ///
    /// # Panics
    ///
    /// Panics when the variable is set to anything else (`abc`, `0`, an
    /// empty string, a negative number): an operator who asked for a
    /// topology override and mistyped it must hear about it at startup,
    /// not discover a silently monolithic deployment later.
    pub fn from_env() -> Self {
        Self::parse_env_value(std::env::var(SHARDS_ENV).ok().as_deref())
    }

    /// The parse behind [`MarketTopology::from_env`], split out so the
    /// valid and panicking cases are unit-testable without mutating the
    /// process environment (a data race against concurrent `getenv`).
    fn parse_env_value(raw: Option<&str>) -> Self {
        let Some(raw) = raw else {
            return MarketTopology::Monolithic;
        };
        match raw.trim().parse::<usize>() {
            Ok(1) => MarketTopology::Monolithic,
            Ok(c) if c >= 2 => MarketTopology::Sharded { count: c },
            _ => panic!(
                "{SHARDS_ENV} must be a shard count >= 1, got `{raw}` \
                 (unset the variable for the monolithic default)"
            ),
        }
    }

    /// Shard count actually used for a population of `n` items: at least
    /// 1, at most `n` (no point in more shards than items).
    pub fn effective_shards(&self, n: usize) -> usize {
        match *self {
            MarketTopology::Monolithic => 1,
            MarketTopology::Sharded { count } => count.clamp(1, n.max(1)),
        }
    }
}

/// SplitMix64 finalizer — the stable bidder → shard hash.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard a bidder id hashes into under `shards` shards and `seed`
/// (normally [`SHARD_SEED`]). This is *the* assignment [`partition`] uses,
/// exposed so tooling — e.g. the adversary simulator picking colluding
/// shard-mates — can reason about co-residency without building an
/// instance.
pub fn shard_of(bidder: usize, shards: usize, seed: u64) -> usize {
    assert!(shards >= 1, "shard_of requires at least one shard");
    (splitmix64((bidder as u64).wrapping_add(seed)) % shards as u64) as usize
}

/// Deterministically partitions an instance's items into `shards` groups
/// of ascending item indices. Assignment depends only on the item's
/// bidder id and `seed` — never on the round's population — so a bidder
/// keeps its shard across rounds and bid changes.
pub fn partition(inst: &WdpInstance, shards: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(shards >= 1, "partition requires at least one shard");
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for (i, it) in inst.items.iter().enumerate() {
        groups[shard_of(it.bidder, shards, seed)].push(i);
    }
    groups
}

/// Per-shard telemetry from one sharded round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStat {
    /// Items hashed into the shard.
    pub size: usize,
    /// Winners of the shard's own WDP.
    pub winners: usize,
    /// The shard WDP's objective.
    pub welfare: f64,
    /// Provisional Clarke pivot mass `Σᵢ max(W*ₛ − W*ₛ₋ᵢ, 0)` of the
    /// shard's winners, priced *within the shard* by the incremental
    /// engine. Comparing this against the reconciliation pivot mass shows
    /// how much the topology shifts pricing.
    pub pivot_mass: f64,
}

/// Result of one sharded (or degenerate monolithic) round.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRound {
    /// Final solution; `selected` holds indices into the full instance.
    pub solution: WdpSolution,
    /// `W*₋ᵢ` of the reconciliation pool for each entry of
    /// `solution.selected`, in order — the Clarke pivot inputs.
    pub loo_welfares: Vec<f64>,
    /// Shard count actually used.
    pub shards: usize,
    /// The reconciliation pool: every shard's winners plus first displaced
    /// candidate, ascending parent indices. For a monolithic round this is
    /// the whole market.
    pub champions: Vec<usize>,
    /// Per-shard telemetry, in shard order.
    pub shard_stats: Vec<ShardStat>,
}

impl ShardedRound {
    /// Reconciliation-level pivot mass `Σᵢ max(W* − W*₋ᵢ, 0)` of the final
    /// winners.
    pub fn pivot_mass(&self) -> f64 {
        self.loo_welfares
            .iter()
            .map(|&w| (self.solution.objective - w).max(0.0))
            .sum()
    }
}

/// The first candidate a shard's solution displaced — the runner-up that
/// joins the shard's winners in the champion pool so reconciliation can
/// both promote it and price pivots against it.
fn first_displaced(view: &WdpView<'_>, selected: &[usize]) -> Option<usize> {
    match view.budget() {
        // No budget: the (K+1)-th entry of the preference order. Including
        // it is what makes top-K reconciliation exact (see module docs).
        None => {
            let order = crate::wdp::preference_order(view);
            let k = view.max_winners().unwrap_or(view.len());
            order.get(k).copied()
        }
        // Budget: the densest positive candidate the DP left out (ties
        // break toward the lowest index — deterministic). `selected` is
        // ascending (WdpSolution contract), so membership is a bisect.
        Some(budget) => {
            let mut best: Option<(f64, usize)> = None;
            for i in view.indices() {
                let it = view.item(i);
                if it.weight <= 0.0
                    || it.cost > budget + 1e-12
                    || selected.binary_search(&i).is_ok()
                {
                    continue;
                }
                let density = it.weight / it.cost.max(1e-12);
                if best.is_none_or(|(bd, _)| density > bd) {
                    best = Some((density, i));
                }
            }
            best.map(|(_, i)| i)
        }
    }
}

/// Runs one full sharded round on `inst`: partition, per-shard solve +
/// incremental pivots (fanned out nested-safe on `pool`), champion
/// reconciliation, and reconciliation-level leave-one-out welfares for the
/// final winners. With an effective shard count of 1 this is exactly the
/// monolithic solve + pivot pass.
pub fn solve_sharded_on(
    inst: &WdpInstance,
    kind: SolverKind,
    topology: MarketTopology,
    strategy: PaymentStrategy,
    pool: par::Pool,
) -> ShardedRound {
    solve_sharded_arena_on(
        inst,
        kind,
        topology,
        strategy,
        pool,
        &mut SolverArena::new(),
    )
}

/// [`solve_sharded_on`] through a caller-recycled [`SolverArena`]: a serial
/// caller that keeps the arena alive across rounds runs the whole pipeline
/// — per-shard solves, pivots, and reconciliation — without steady-state
/// heap allocations in the solver. A parallel shard fan-out gives each
/// worker its own arena via [`par::Pool::run_with`] (scratch never feeds
/// an output bit, so `LOVM_THREADS` still cannot change the result).
pub fn solve_sharded_arena_on(
    inst: &WdpInstance,
    kind: SolverKind,
    topology: MarketTopology,
    strategy: PaymentStrategy,
    pool: par::Pool,
    arena: &mut SolverArena,
) -> ShardedRound {
    let n = inst.items.len();
    let eff = topology.effective_shards(n);
    telemetry::gauge!("solve.shards").set(eff.max(1) as f64);
    if eff <= 1 {
        // Monolithic short-circuit: the single solve is the round's one
        // "shard", so it still lands in the per-shard histogram.
        let _shard_span = telemetry::hist!("solve.shard_ns").span();
        let view = WdpView::full(inst);
        let solution = arena.solve_view(&view, kind);
        let mut loo_welfares = Vec::new();
        leave_one_out_welfares_view_into(
            &view,
            &solution.selected,
            kind,
            strategy,
            pool,
            arena,
            &mut loo_welfares,
        );
        let stat = ShardStat {
            size: n,
            winners: solution.selected.len(),
            welfare: solution.objective,
            pivot_mass: loo_welfares
                .iter()
                .map(|&w| (solution.objective - w).max(0.0))
                .sum(),
        };
        return ShardedRound {
            solution,
            loo_welfares,
            shards: 1,
            champions: (0..n).collect(),
            shard_stats: vec![stat],
        };
    }

    let groups = partition(inst, eff, SHARD_SEED);
    // Per-shard stage: each shard solves its WDP and runs the incremental
    // pivot engine over its own winners, with the worker budget split
    // between the shard fan-out and each shard's pivot merges. Serial runs
    // borrow the round's arena; parallel workers build their own.
    let (outer, inner) = pool.split(groups.len());
    let mut per_shard: Vec<(Vec<usize>, ShardStat)> = Vec::new();
    outer.run_with(
        groups.len(),
        arena,
        SolverArena::default,
        &mut per_shard,
        |shard_arena, gi| {
            // Per-shard solve + pivots span; histograms are shared
            // atomics, so parallel workers record without coordination.
            let _shard_span = telemetry::hist!("solve.shard_ns").span();
            let group = &groups[gi];
            let view = WdpView::of_subset(inst, group);
            let sol = shard_arena.solve_view(&view, kind);
            let mut loo = Vec::new();
            leave_one_out_welfares_view_into(
                &view,
                &sol.selected,
                kind,
                strategy,
                inner,
                shard_arena,
                &mut loo,
            );
            let pivot_mass = loo.iter().map(|&w| (sol.objective - w).max(0.0)).sum();
            let stat = ShardStat {
                size: group.len(),
                winners: sol.selected.len(),
                welfare: sol.objective,
                pivot_mass,
            };
            let mut champs = sol.selected;
            if let Some(d) = first_displaced(&view, &champs) {
                champs.push(d);
            }
            champs.sort_unstable();
            (champs, stat)
        },
    );

    // Champion pool: shard proposals are disjoint index sets, merged into
    // one ascending roster.
    let mut champions: Vec<usize> = Vec::new();
    let mut shard_stats: Vec<ShardStat> = Vec::with_capacity(eff);
    for (champs, stat) in per_shard {
        champions.extend(champs);
        shard_stats.push(stat);
    }
    champions.sort_unstable();

    // Reconciliation: the original constraints over the champion pool,
    // then reconciliation-level pivots for the final winners.
    let _reconcile_span = telemetry::hist!("solve.reconcile_ns").span();
    let rview = WdpView::of_subset(inst, &champions);
    let solution = arena.solve_view(&rview, kind);
    let mut loo_welfares = Vec::new();
    leave_one_out_welfares_view_into(
        &rview,
        &solution.selected,
        kind,
        strategy,
        pool,
        arena,
        &mut loo_welfares,
    );
    ShardedRound {
        solution,
        loo_welfares,
        shards: eff,
        champions,
        shard_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wdp::{solve, WdpItem};
    use simrng::{rngs::StdRng, RngExt, SeedableRng};

    fn item(bidder: usize, weight: f64, cost: f64) -> WdpItem {
        WdpItem {
            bidder,
            weight,
            cost,
        }
    }

    fn random_instance(rng: &mut StdRng, n: usize) -> WdpInstance {
        let items: Vec<WdpItem> = (0..n)
            .map(|i| item(i, rng.random_range(-2.0..9.0), rng.random_range(0.05..3.0)))
            .collect();
        WdpInstance::new(items)
    }

    #[test]
    fn from_env_semantics() {
        assert_eq!(MarketTopology::Monolithic.effective_shards(100), 1);
        assert_eq!(
            MarketTopology::Sharded { count: 0 }.effective_shards(100),
            1
        );
        assert_eq!(
            MarketTopology::Sharded { count: 1 }.effective_shards(100),
            1
        );
        assert_eq!(
            MarketTopology::Sharded { count: 8 }.effective_shards(100),
            8
        );
        assert_eq!(MarketTopology::Sharded { count: 8 }.effective_shards(3), 3);
        assert_eq!(MarketTopology::Sharded { count: 8 }.effective_shards(0), 1);
    }

    /// Exercises the `from_env` parse — valid and panicking cases —
    /// through the extracted value parser: mutating the real environment
    /// from a test races concurrent `getenv` callers on other test
    /// threads (UB on glibc), so the env read stays untested-thin and the
    /// decision logic is covered here.
    #[test]
    fn from_env_parses_or_panics() {
        let parse = MarketTopology::parse_env_value;
        assert_eq!(parse(None), MarketTopology::Monolithic);
        assert_eq!(parse(Some("1")), MarketTopology::Monolithic);
        assert_eq!(parse(Some(" 8 ")), MarketTopology::Sharded { count: 8 });
        // Invalid values must panic loudly, not fall back silently.
        for bad in ["abc", "0", "", "-3", "2.5"] {
            let result = std::panic::catch_unwind(|| parse(Some(bad)));
            let err = result.expect_err(&format!("`{bad}` must panic"));
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(
                msg.contains("LOVM_SHARDS must be a shard count"),
                "unhelpful panic message for `{bad}`: {msg}"
            );
        }
        // The thin env wrapper itself must accept whatever ci.sh exported
        // for this very test process (always a valid setting there).
        let _ = MarketTopology::from_env();
    }

    #[test]
    fn partition_is_stable_and_covers() {
        let mut rng = StdRng::seed_from_u64(0x5AAD);
        let inst = random_instance(&mut rng, 500);
        let groups = partition(&inst, 8, SHARD_SEED);
        assert_eq!(groups.len(), 8);
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<_>>(), "partition must cover");
        for g in &groups {
            assert!(g.windows(2).all(|w| w[0] < w[1]), "groups ascend");
        }
        // Stability: an item's shard depends only on its bidder id, not on
        // who else showed up this round.
        let half = WdpInstance::new(inst.items[..250].to_vec());
        let half_groups = partition(&half, 8, SHARD_SEED);
        for (s, g) in groups.iter().enumerate() {
            for &i in g.iter().filter(|&&i| i < 250) {
                assert!(
                    half_groups[s].contains(&i),
                    "bidder {i} moved shards when the population changed"
                );
            }
        }
    }

    #[test]
    fn single_shard_round_is_the_monolithic_solve() {
        let mut rng = StdRng::seed_from_u64(0x0111);
        for _ in 0..20 {
            let inst = random_instance(&mut rng, 30).with_max_winners(5);
            let round = solve_sharded_on(
                &inst,
                SolverKind::Exact,
                MarketTopology::Sharded { count: 1 },
                PaymentStrategy::Incremental,
                par::Pool::serial(),
            );
            let mono = solve(&inst, SolverKind::Exact);
            assert_eq!(round.solution, mono);
            assert_eq!(round.shards, 1);
            assert_eq!(round.champions.len(), 30);
        }
    }

    #[test]
    fn topk_sharded_is_bit_identical_to_monolithic() {
        let mut rng = StdRng::seed_from_u64(0x70CC);
        for round_no in 0..40 {
            let n = rng.random_range(10..120usize);
            let mut inst = random_instance(&mut rng, n);
            if rng.random() {
                inst = inst.with_max_winners(rng.random_range(1..12usize));
            }
            let mono = solve(&inst, SolverKind::Exact);
            for count in [2usize, 3, 8, 32] {
                let sharded = solve_sharded_on(
                    &inst,
                    SolverKind::Exact,
                    MarketTopology::Sharded { count },
                    PaymentStrategy::Incremental,
                    par::Pool::serial(),
                );
                assert_eq!(
                    sharded.solution.selected, mono.selected,
                    "round {round_no} shards {count}: winner sets diverged"
                );
                assert_eq!(
                    sharded.solution.objective.to_bits(),
                    mono.objective.to_bits(),
                    "round {round_no} shards {count}: welfare bits diverged"
                );
            }
        }
    }

    #[test]
    fn champion_pool_is_winners_plus_one_per_shard() {
        let mut rng = StdRng::seed_from_u64(0xC4A3);
        let inst = random_instance(&mut rng, 200).with_max_winners(6);
        let round = solve_sharded_on(
            &inst,
            SolverKind::Exact,
            MarketTopology::Sharded { count: 4 },
            PaymentStrategy::Incremental,
            par::Pool::serial(),
        );
        assert_eq!(round.shards, 4);
        let winners: usize = round.shard_stats.iter().map(|s| s.winners).sum();
        assert!(round.champions.len() <= winners + 4);
        assert!(round.champions.len() >= winners);
        assert!(round.champions.windows(2).all(|w| w[0] < w[1]));
        // Final winners must come from the champion pool.
        for &w in &round.solution.selected {
            assert!(round.champions.binary_search(&w).is_ok());
        }
        assert_eq!(round.loo_welfares.len(), round.solution.selected.len());
        assert!(round.pivot_mass() >= 0.0);
    }

    #[test]
    fn budgeted_sharded_round_is_feasible_and_close() {
        let mut rng = StdRng::seed_from_u64(0xB4D6);
        for _ in 0..15 {
            let n = rng.random_range(40..160usize);
            let inst = {
                let base = random_instance(&mut rng, n);
                let budget = 0.05 * base.items.iter().map(|it| it.cost).sum::<f64>();
                base.with_budget(budget)
            };
            let kind = SolverKind::Knapsack { grid: 512 };
            let mono = solve(&inst, kind);
            let sharded = solve_sharded_on(
                &inst,
                kind,
                MarketTopology::Sharded { count: 4 },
                PaymentStrategy::Incremental,
                par::Pool::serial(),
            );
            assert!(
                WdpView::full(&inst).feasible(&sharded.solution.selected),
                "sharded selection violates the budget"
            );
            assert!(
                sharded.solution.objective >= 0.75 * mono.objective,
                "sharded welfare {} collapsed vs monolithic {}",
                sharded.solution.objective,
                mono.objective
            );
        }
    }

    #[test]
    fn sharded_round_is_pool_invariant() {
        let mut rng = StdRng::seed_from_u64(0xD00D);
        let inst = {
            let base = random_instance(&mut rng, 300);
            let budget = 0.04 * base.items.iter().map(|it| it.cost).sum::<f64>();
            base.with_budget(budget)
        };
        let kind = SolverKind::Knapsack { grid: 256 };
        let serial = solve_sharded_on(
            &inst,
            kind,
            MarketTopology::Sharded { count: 8 },
            PaymentStrategy::Incremental,
            par::Pool::serial(),
        );
        let pooled = solve_sharded_on(
            &inst,
            kind,
            MarketTopology::Sharded { count: 8 },
            PaymentStrategy::Incremental,
            par::Pool::with_threads(4),
        );
        assert_eq!(serial.solution, pooled.solution);
        assert_eq!(serial.champions, pooled.champions);
        assert_eq!(
            serial
                .loo_welfares
                .iter()
                .map(|w| w.to_bits())
                .collect::<Vec<_>>(),
            pooled
                .loo_welfares
                .iter()
                .map(|w| w.to_bits())
                .collect::<Vec<_>>()
        );
    }
}
