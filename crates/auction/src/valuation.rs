//! Platform-side valuation of selected clients.
//!
//! LOVM's per-round winner determination is additive across clients, so a
//! valuation assigns each bid a scalar value `v_i`; set-level concavity is
//! modelled by applying a concave transform to the per-client effective data
//! (diminishing returns *within* a client) which keeps the WDP exact.

use crate::bid::Bid;

/// Per-client value parameters shared by the valuation variants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientValue {
    /// Value per unit of quality-weighted data.
    pub value_per_unit: f64,
    /// Flat value for participating at all (covers gradient diversity).
    pub base_value: f64,
}

impl Default for ClientValue {
    fn default() -> Self {
        ClientValue {
            value_per_unit: 0.05,
            base_value: 0.5,
        }
    }
}

/// How the platform values one selected client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Valuation {
    /// `v_i = base + u · d_i q_i`.
    Linear(ClientValue),
    /// `v_i = base + u · log(1 + d_i q_i)` — diminishing returns in data.
    Log(ClientValue),
    /// `v_i = base + u · sqrt(d_i q_i)` — milder diminishing returns.
    Sqrt(ClientValue),
}

impl Valuation {
    /// Value of one selected bid.
    pub fn client_value(&self, bid: &Bid) -> f64 {
        let e = bid.effective_data();
        match *self {
            Valuation::Linear(p) => p.base_value + p.value_per_unit * e,
            Valuation::Log(p) => p.base_value + p.value_per_unit * (1.0 + e).ln(),
            Valuation::Sqrt(p) => p.base_value + p.value_per_unit * e.sqrt(),
        }
    }

    /// Total value of a selected set (additive).
    pub fn set_value(&self, bids: &[Bid]) -> f64 {
        bids.iter().map(|b| self.client_value(b)).sum()
    }
}

impl Default for Valuation {
    fn default() -> Self {
        Valuation::Log(ClientValue::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(d: usize, q: f64) -> Bid {
        Bid::new(0, 1.0, d, q)
    }

    #[test]
    fn linear_scales_with_data() {
        let v = Valuation::Linear(ClientValue {
            value_per_unit: 2.0,
            base_value: 1.0,
        });
        assert_eq!(v.client_value(&bid(10, 1.0)), 21.0);
        assert_eq!(v.client_value(&bid(0, 1.0)), 1.0);
    }

    #[test]
    fn log_has_diminishing_returns() {
        let v = Valuation::Log(ClientValue {
            value_per_unit: 1.0,
            base_value: 0.0,
        });
        let gain_small = v.client_value(&bid(20, 1.0)) - v.client_value(&bid(10, 1.0));
        let gain_large = v.client_value(&bid(1010, 1.0)) - v.client_value(&bid(1000, 1.0));
        assert!(gain_small > gain_large * 5.0);
    }

    #[test]
    fn sqrt_monotone_in_quality() {
        let v = Valuation::Sqrt(ClientValue::default());
        assert!(v.client_value(&bid(100, 0.9)) > v.client_value(&bid(100, 0.3)));
    }

    #[test]
    fn set_value_is_additive() {
        let v = Valuation::Linear(ClientValue {
            value_per_unit: 1.0,
            base_value: 0.0,
        });
        let bids = [bid(10, 1.0), bid(5, 1.0)];
        assert_eq!(v.set_value(&bids), 15.0);
        assert_eq!(v.set_value(&[]), 0.0);
    }

    #[test]
    fn all_variants_monotone_in_effective_data() {
        for v in [
            Valuation::Linear(ClientValue::default()),
            Valuation::Log(ClientValue::default()),
            Valuation::Sqrt(ClientValue::default()),
        ] {
            assert!(v.client_value(&bid(200, 0.8)) > v.client_value(&bid(100, 0.8)));
        }
    }
}
