//! # auction — mechanism-design core
//!
//! Sealed-bid reverse-auction machinery for federated-learning incentive
//! mechanisms:
//!
//! * [`bid`] — bidder types (private cost, verifiable data size/quality),
//! * [`valuation`] — how the platform values a selected client,
//! * [`wdp`] — winner-determination solvers (exact top-K, knapsack DP,
//!   exhaustive, greedy density),
//! * [`vcg`] — Clarke-pivot payments over a scored winner-determination
//!   instance (the per-round auction used by LOVM),
//! * [`pivots`] — the incremental leave-one-out welfare engine behind VCG
//!   payments: all `W*₋ᵢ` from one shared pass, bit-identical to the naive
//!   per-winner re-solve,
//! * [`shard`] — the sharded market engine: stable seeded partition,
//!   independent per-shard WDP + pivot solves, and a champion
//!   reconciliation that is bit-identical to the monolithic top-K path
//!   and welfare-bounded for budgeted rounds,
//! * [`sealed`] — the sealed-round adapter: canonical ascending-bidder
//!   snapshots the streaming ingestion layer hands to this batch path,
//! * [`critical`] — Myerson critical-value payments for monotone
//!   allocation rules (used by greedy baselines),
//! * [`properties`] — executable checks for truthfulness, individual
//!   rationality, and budget feasibility used by tests and the harness.
//!
//! # Example: one VCG procurement round
//!
//! ```
//! use auction::bid::Bid;
//! use auction::valuation::{ClientValue, Valuation};
//! use auction::vcg::{VcgAuction, VcgConfig};
//!
//! let bids = vec![
//!     Bid::new(0, 1.0, 100, 0.9),
//!     Bid::new(1, 4.0, 120, 0.8),
//!     Bid::new(2, 0.5, 40, 0.5),
//! ];
//! let valuation = Valuation::Linear(ClientValue::default());
//! let auction = VcgAuction::new(VcgConfig {
//!     value_weight: 1.0,
//!     cost_weight: 1.0,
//!     max_winners: Some(2),
//!     ..VcgConfig::default()
//! });
//! let outcome = auction.run(&bids, &valuation);
//! // Winners are paid at least their reported cost (individual rationality).
//! for w in &outcome.winners {
//!     assert!(outcome.payment_of(w.bidder).unwrap() >= w.cost - 1e-9);
//! }
//! ```

pub mod bid;
pub mod critical;
pub mod outcome;
pub mod pivots;
pub mod properties;
pub mod sealed;
pub mod shard;
pub mod valuation;
pub mod vcg;
pub mod wdp;

pub use bid::Bid;
pub use outcome::{AuctionOutcome, Award};
pub use pivots::PaymentStrategy;
pub use sealed::SealedRound;
pub use shard::MarketTopology;
pub use valuation::{ClientValue, Valuation};
pub use vcg::{RoundScratch, VcgAuction, VcgConfig};
pub use wdp::{
    solve, solve_view, SolverArena, SolverKind, WdpInstance, WdpItem, WdpSolution, WdpView, DP_EPS,
};
