//! Clarke-pivot (VCG) procurement auction over a weighted score.
//!
//! The mechanism maximizes the *virtual welfare*
//! `W(S) = Σ_{i∈S} (V·v_i − Q·ĉ_i)` where `V` is the value weight
//! ([`VcgConfig::value_weight`]), `Q > 0` the cost weight
//! ([`VcgConfig::cost_weight`]), `v_i` the platform's (verifiable) value for
//! client `i` and `ĉ_i` the reported cost. Winner `i` is paid
//!
//! ```text
//! p_i = ĉ_i + (W* − W*₋ᵢ) / Q
//! ```
//!
//! where `W*₋ᵢ` is the optimal virtual welfare with `i` excluded. Because
//! the allocation maximizes `W` exactly and `Q` is bid-independent, this is
//! the Clarke pivot rule expressed in money: reporting `ĉ_i = c_i` is a
//! dominant strategy, and `p_i ≥ ĉ_i` (individual rationality) follows from
//! `W* ≥ W*₋ᵢ`.

use crate::bid::Bid;
use crate::outcome::{AuctionOutcome, Award};
use crate::pivots::{leave_one_out_welfares_on, leave_one_out_welfares_view_into, PaymentStrategy};
use crate::shard::{solve_sharded_arena_on, solve_sharded_on, MarketTopology};
use crate::valuation::Valuation;
use crate::wdp::{solve, SolverArena, SolverKind, WdpInstance, WdpItem, WdpSolution, WdpView};

/// Reusable workspace for the streamed round loop: the solver arena plus
/// the instance/solution/welfare buffers one auction round churns through.
/// `core::Lovm` keeps one alive across rounds, which is what makes a
/// sustained `lovm stream` / `serve` session allocate nothing per sealed
/// round inside the solver (the returned [`AuctionOutcome`] still owns its
/// award vector — that is the API's output, not solver scratch).
#[derive(Debug, Clone, Default)]
pub struct RoundScratch {
    arena: SolverArena,
    items: Vec<WdpItem>,
    solution: WdpSolution,
    welfares: Vec<f64>,
}

impl RoundScratch {
    /// An empty scratch; buffers warm up over the first rounds.
    pub fn new() -> Self {
        RoundScratch::default()
    }
}

/// Configuration of one VCG round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcgConfig {
    /// Weight on platform value in the virtual welfare (`V ≥ 0`).
    pub value_weight: f64,
    /// Weight on reported cost in the virtual welfare (`Q > 0`).
    pub cost_weight: f64,
    /// Cardinality cap on winners.
    pub max_winners: Option<usize>,
    /// Reserve price: bids reporting a cost above it are excluded and no
    /// payment exceeds it. With exact allocation the critical report
    /// becomes `min(standard pivot price, reserve)`, so truthfulness is
    /// preserved. `None` disables the reserve.
    pub reserve_price: Option<f64>,
    /// Market layout: one monolithic winner determination, or the
    /// partition → per-shard solve → champion-reconciliation pipeline of
    /// [`crate::shard`]. `Sharded { count: 1 }` is the monolithic path;
    /// for no-budget (top-K) rounds every shard count is bit-identical to
    /// it, while budgeted rounds trade a measured sliver of welfare for
    /// bounded memory.
    pub topology: MarketTopology,
}

impl Default for VcgConfig {
    fn default() -> Self {
        VcgConfig {
            value_weight: 1.0,
            cost_weight: 1.0,
            max_winners: None,
            reserve_price: None,
            topology: MarketTopology::Monolithic,
        }
    }
}

/// A sealed-bid VCG procurement auction (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcgAuction {
    config: VcgConfig,
}

impl VcgAuction {
    /// Creates the auction.
    ///
    /// # Panics
    ///
    /// Panics if `cost_weight <= 0`, `value_weight < 0`, or either weight is
    /// non-finite.
    pub fn new(config: VcgConfig) -> Self {
        assert!(
            config.cost_weight.is_finite() && config.cost_weight > 0.0,
            "cost_weight must be finite and positive"
        );
        assert!(
            config.value_weight.is_finite() && config.value_weight >= 0.0,
            "value_weight must be finite and non-negative"
        );
        if let Some(r) = config.reserve_price {
            assert!(
                r.is_finite() && r >= 0.0,
                "reserve_price must be finite and >= 0"
            );
        }
        VcgAuction { config }
    }

    /// The configuration.
    pub fn config(&self) -> &VcgConfig {
        &self.config
    }

    /// Winner determination plus leave-one-out pivot welfares under the
    /// configured market topology. Monolithic (and single-shard) rounds
    /// take the direct solve + pivot path; larger shard counts run the
    /// partition → per-shard solve → champion-reconciliation pipeline.
    fn solve_and_pivots(
        &self,
        inst: &WdpInstance,
        kind: SolverKind,
        strategy: PaymentStrategy,
        pool: par::Pool,
    ) -> (WdpSolution, Vec<f64>) {
        if self.config.topology.effective_shards(inst.items.len()) <= 1 {
            let sol = solve(inst, kind);
            let w_minus = leave_one_out_welfares_on(inst, &sol.selected, kind, strategy, pool);
            (sol, w_minus)
        } else {
            let round = solve_sharded_on(inst, kind, self.config.topology, strategy, pool);
            (round.solution, round.loo_welfares)
        }
    }

    /// The WDP item for one bid: its virtual-welfare score and money cost.
    /// Bids whose reported cost exceeds the reserve price get weight
    /// −∞-like exclusion (never selected).
    fn item_for(&self, b: &Bid, valuation: &Valuation) -> WdpItem {
        let above_reserve = self.config.reserve_price.is_some_and(|r| b.cost > r);
        WdpItem {
            bidder: b.bidder,
            weight: if above_reserve {
                f64::MIN
            } else {
                self.config.value_weight * valuation.client_value(b)
                    - self.config.cost_weight * b.cost
            },
            cost: b.cost,
        }
    }

    /// Builds the winner-determination instance for the given bids.
    pub fn instance(&self, bids: &[Bid], valuation: &Valuation) -> WdpInstance {
        let items = bids.iter().map(|b| self.item_for(b, valuation)).collect();
        let mut inst = WdpInstance::new(items);
        if let Some(k) = self.config.max_winners {
            inst = inst.with_max_winners(k);
        }
        inst
    }

    /// Clarke awards for a solved no-budget round: `p_i = c_i + pivot/Q`,
    /// reserve-capped. Shared by [`VcgAuction::run_with_strategy_on`] and
    /// the scratch path so both produce the identical float sequence.
    fn awards(
        &self,
        bids: &[Bid],
        valuation: &Valuation,
        sol: &WdpSolution,
        w_minus: &[f64],
    ) -> AuctionOutcome {
        let w_star = sol.objective;
        let q = self.config.cost_weight;
        let winners = sol
            .selected
            .iter()
            .zip(w_minus)
            .map(|(&i, &w_minus_i)| {
                let bid = &bids[i];
                // Exact top-K gives W* ≥ W*₋ᵢ; the clamp only absorbs
                // last-ulp float noise when the pivot is a mathematical tie.
                let pivot = (w_star - w_minus_i).max(0.0);
                let mut payment = bid.cost + pivot / q;
                // The reserve caps the critical report, hence the payment.
                if let Some(r) = self.config.reserve_price {
                    payment = payment.min(r);
                }
                Award {
                    bidder: bid.bidder,
                    cost: bid.cost,
                    value: valuation.client_value(bid),
                    payment,
                }
            })
            .collect();
        AuctionOutcome::new(winners, w_star)
    }

    /// Runs the auction: exact winner determination plus Clarke payments.
    ///
    /// Runtime is `O(n log n + n·K)` where `K` is the winner count: the
    /// optimum is the top-K positive-score set and the incremental pivot
    /// engine ([`crate::pivots`]) reads every `W*₋ᵢ` off one shared sorted
    /// order, at an O(n) canonical re-sum per winner (the price of
    /// bit-identity with the naive re-solve). With the winner caps LOVM
    /// runs in practice (`K` ≪ n) that is `O(n log n)`; with no cap and
    /// all-positive scores it degrades to `O(n²)` float adds.
    pub fn run(&self, bids: &[Bid], valuation: &Valuation) -> AuctionOutcome {
        // Serial pool: per-pivot work here is O(K) — far below the
        // threshold where fan-out pays for itself in this hot loop.
        self.run_with_strategy_on(
            bids,
            valuation,
            PaymentStrategy::Incremental,
            par::Pool::serial(),
        )
    }

    /// [`VcgAuction::run`] with an explicit pivot-welfare strategy and
    /// worker pool. Both strategies produce bit-identical payments; `Naive`
    /// re-solves the winner determination once per winner and exists as the
    /// differential-testing reference.
    pub fn run_with_strategy_on(
        &self,
        bids: &[Bid],
        valuation: &Valuation,
        strategy: PaymentStrategy,
        pool: par::Pool,
    ) -> AuctionOutcome {
        let inst = self.instance(bids, valuation);
        let (sol, w_minus) = self.solve_and_pivots(&inst, SolverKind::Exact, strategy, pool);
        self.awards(bids, valuation, &sol, &w_minus)
    }

    /// [`VcgAuction::run_with_strategy_on`] through a caller-recycled
    /// [`RoundScratch`]: the same auction, the same payments bit for bit,
    /// with the instance build, winner determination, and pivot welfares
    /// all running on recycled buffers. A monolithic caller that keeps the
    /// scratch across rounds reaches zero steady-state solver allocations
    /// per round; sharded topologies get per-worker arenas (correctness
    /// under `LOVM_THREADS`, not zero-alloc — scoped workers cannot
    /// persist buffers across rounds).
    pub fn run_with_scratch_on(
        &self,
        bids: &[Bid],
        valuation: &Valuation,
        strategy: PaymentStrategy,
        pool: par::Pool,
        scratch: &mut RoundScratch,
    ) -> AuctionOutcome {
        // Rebuild the instance inside the recycled item buffer; it is
        // moved back into the scratch before returning.
        let mut items = std::mem::take(&mut scratch.items);
        items.clear();
        items.extend(bids.iter().map(|b| self.item_for(b, valuation)));
        let mut inst = WdpInstance::new(items);
        if let Some(k) = self.config.max_winners {
            inst = inst.with_max_winners(k);
        }
        let kind = SolverKind::Exact;
        let outcome = if self.config.topology.effective_shards(inst.items.len()) <= 1 {
            let view = WdpView::full(&inst);
            scratch
                .arena
                .solve_view_into(&view, kind, &mut scratch.solution);
            leave_one_out_welfares_view_into(
                &view,
                &scratch.solution.selected,
                kind,
                strategy,
                pool,
                &mut scratch.arena,
                &mut scratch.welfares,
            );
            self.awards(bids, valuation, &scratch.solution, &scratch.welfares)
        } else {
            let round = solve_sharded_arena_on(
                &inst,
                kind,
                self.config.topology,
                strategy,
                pool,
                &mut scratch.arena,
            );
            self.awards(bids, valuation, &round.solution, &round.loo_welfares)
        };
        scratch.items = inst.items;
        outcome
    }

    /// Runs the auction with an arbitrary (budget-capped) instance and the
    /// generic Clarke pivot `W* − W*₋ᵢ`.
    ///
    /// Use an exact `solver` for truthfulness; a greedy solver voids the
    /// VCG guarantee (use critical-value payments instead — see
    /// [`crate::critical`]).
    ///
    /// Pivot welfares come from the incremental leave-one-out engine
    /// ([`crate::pivots`], `PaymentStrategy::Incremental`), which shares
    /// one forward/backward DP pass across all winners instead of
    /// re-solving per winner — same payments, bit for bit, at a fraction of
    /// the cost. The per-winner merges run on [`par::Pool::auto`]; use
    /// [`VcgAuction::run_with_budget_on`] to pin the worker count. Output
    /// is bit-identical at any worker count.
    pub fn run_with_budget(
        &self,
        bids: &[Bid],
        valuation: &Valuation,
        budget: f64,
        solver: SolverKind,
    ) -> AuctionOutcome {
        self.run_with_budget_on(bids, valuation, budget, solver, par::Pool::auto())
    }

    /// [`VcgAuction::run_with_budget`] with an explicit worker pool for the
    /// per-winner pivot computations.
    pub fn run_with_budget_on(
        &self,
        bids: &[Bid],
        valuation: &Valuation,
        budget: f64,
        solver: SolverKind,
        pool: par::Pool,
    ) -> AuctionOutcome {
        self.run_with_budget_strategy_on(
            bids,
            valuation,
            budget,
            solver,
            PaymentStrategy::Incremental,
            pool,
        )
    }

    /// [`VcgAuction::run_with_budget_on`] with an explicit pivot-welfare
    /// strategy. `PaymentStrategy::Naive` re-solves the reduced instance
    /// once per winner (the pre-incremental behavior); the differential
    /// suite holds both strategies to bit-identical outcomes.
    pub fn run_with_budget_strategy_on(
        &self,
        bids: &[Bid],
        valuation: &Valuation,
        budget: f64,
        solver: SolverKind,
        strategy: PaymentStrategy,
        pool: par::Pool,
    ) -> AuctionOutcome {
        let inst = self.instance(bids, valuation).with_budget(budget);
        // Each winner's pivot needs the optimum of the instance without it
        // — the round's dominant cost, and the engine's whole reason to
        // exist.
        let (sol, w_minus) = self.solve_and_pivots(&inst, solver, strategy, pool);
        let w_star = sol.objective;
        let q = self.config.cost_weight;
        let winners = sol
            .selected
            .iter()
            .zip(w_minus)
            .map(|(&i, w_minus_i)| {
                let bid = &bids[i];
                // With an exact solver the pivot is in [0, w_i]; clamp at 0
                // to stay IR if an approximate solver is supplied anyway.
                let pivot = (w_star - w_minus_i).max(0.0);
                let payment = bid.cost + pivot / q;
                Award {
                    bidder: bid.bidder,
                    cost: bid.cost,
                    value: valuation.client_value(bid),
                    payment,
                }
            })
            .collect();
        AuctionOutcome::new(winners, w_star)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valuation::ClientValue;

    fn linear() -> Valuation {
        Valuation::Linear(ClientValue {
            value_per_unit: 1.0,
            base_value: 0.0,
        })
    }

    fn bid(id: usize, cost: f64, data: usize) -> Bid {
        Bid::new(id, cost, data, 1.0)
    }

    #[test]
    fn selects_positive_virtual_scores() {
        // scores: 10-2=8, 5-7=-2, 3-1=2
        let bids = vec![bid(0, 2.0, 10), bid(1, 7.0, 5), bid(2, 1.0, 3)];
        let auction = VcgAuction::new(VcgConfig::default());
        let o = auction.run(&bids, &linear());
        assert_eq!(o.winner_ids(), vec![0, 2]);
        assert!((o.virtual_welfare - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unconstrained_pays_marginal_contribution() {
        // Without a cap, W*₋ᵢ = W* − w_i, so p_i = c_i + w_i / Q.
        let bids = vec![bid(0, 2.0, 10), bid(1, 1.0, 3)];
        let auction = VcgAuction::new(VcgConfig::default());
        let o = auction.run(&bids, &linear());
        assert!((o.payment_of(0).unwrap() - (2.0 + 8.0)).abs() < 1e-9);
        assert!((o.payment_of(1).unwrap() - (1.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn capped_pays_displacement() {
        // scores: A=8, B=5, C=3. K=2 → winners A, B.
        // p_A = c_A + (w_A − w_C)/Q, p_B = c_B + (w_B − w_C)/Q.
        let bids = vec![bid(0, 2.0, 10), bid(1, 1.0, 6), bid(2, 1.0, 4)];
        let auction = VcgAuction::new(VcgConfig {
            max_winners: Some(2),
            ..VcgConfig::default()
        });
        let o = auction.run(&bids, &linear());
        assert_eq!(o.winner_ids(), vec![0, 1]);
        assert!((o.payment_of(0).unwrap() - (2.0 + (8.0 - 3.0))).abs() < 1e-9);
        assert!((o.payment_of(1).unwrap() - (1.0 + (5.0 - 3.0))).abs() < 1e-9);
    }

    #[test]
    fn cap_not_binding_behaves_unconstrained() {
        let bids = vec![bid(0, 2.0, 10), bid(1, 1.0, 6)];
        let capped = VcgAuction::new(VcgConfig {
            max_winners: Some(5),
            ..VcgConfig::default()
        })
        .run(&bids, &linear());
        let free = VcgAuction::new(VcgConfig::default()).run(&bids, &linear());
        assert_eq!(capped, free);
    }

    #[test]
    fn payments_cover_reported_cost() {
        let bids = vec![
            bid(0, 2.0, 10),
            bid(1, 7.0, 9),
            bid(2, 1.0, 3),
            bid(3, 0.5, 2),
        ];
        let auction = VcgAuction::new(VcgConfig {
            max_winners: Some(2),
            ..VcgConfig::default()
        });
        let o = auction.run(&bids, &linear());
        for w in &o.winners {
            assert!(w.payment >= w.cost - 1e-9);
        }
    }

    #[test]
    fn cost_weight_scales_payments() {
        // Larger Q shrinks the money bonus (the virtual pivot is divided by Q).
        let bids = vec![bid(0, 2.0, 10)];
        let pay = |q: f64| {
            VcgAuction::new(VcgConfig {
                value_weight: 1.0,
                cost_weight: q,
                ..VcgConfig::default()
            })
            .run(&bids, &linear())
            .payment_of(0)
        };
        let p1 = pay(1.0).unwrap();
        let p4 = pay(4.0).unwrap();
        assert!(p4 < p1);
        assert!(p4 >= 2.0);
    }

    #[test]
    fn budgeted_run_matches_unbudgeted_when_loose() {
        let bids = vec![bid(0, 2.0, 10), bid(1, 1.0, 6)];
        let auction = VcgAuction::new(VcgConfig::default());
        let loose = auction.run_with_budget(&bids, &linear(), 1e6, SolverKind::Exhaustive);
        let free = auction.run(&bids, &linear());
        assert_eq!(loose.winner_ids(), free.winner_ids());
        for w in &loose.winners {
            assert!((w.payment - free.payment_of(w.bidder).unwrap()).abs() < 1e-6);
        }
    }

    #[test]
    fn budgeted_run_respects_budget_on_costs() {
        let bids = vec![bid(0, 5.0, 10), bid(1, 4.0, 8), bid(2, 3.0, 6)];
        let auction = VcgAuction::new(VcgConfig::default());
        let o = auction.run_with_budget(&bids, &linear(), 7.0, SolverKind::Exhaustive);
        assert!(o.total_cost() <= 7.0 + 1e-9);
        assert!(!o.winners.is_empty());
    }

    #[test]
    fn empty_bids_empty_outcome() {
        let auction = VcgAuction::new(VcgConfig::default());
        let o = auction.run(&[], &linear());
        assert!(o.winners.is_empty());
        assert_eq!(o.virtual_welfare, 0.0);
    }

    #[test]
    fn reserve_excludes_expensive_bids() {
        let bids = vec![bid(0, 2.0, 10), bid(1, 6.0, 50)];
        let auction = VcgAuction::new(VcgConfig {
            reserve_price: Some(5.0),
            ..VcgConfig::default()
        });
        let o = auction.run(&bids, &linear());
        assert_eq!(o.winner_ids(), vec![0]);
    }

    #[test]
    fn reserve_caps_payment() {
        // Single winner, unconstrained: uncapped payment would be
        // c + w = 2 + 8 = 10; reserve 5 caps it.
        let bids = vec![bid(0, 2.0, 10)];
        let auction = VcgAuction::new(VcgConfig {
            reserve_price: Some(5.0),
            ..VcgConfig::default()
        });
        let o = auction.run(&bids, &linear());
        assert_eq!(o.payment_of(0), Some(5.0));
    }

    #[test]
    fn reserve_preserves_truthfulness_and_ir() {
        use crate::properties::{default_factor_grid, individually_rational, probe_truthfulness};
        let bids = vec![bid(0, 2.0, 10), bid(1, 1.0, 6), bid(2, 3.0, 8)];
        let auction = VcgAuction::new(VcgConfig {
            max_winners: Some(2),
            reserve_price: Some(4.0),
            ..VcgConfig::default()
        });
        let o = auction.run(&bids, &linear());
        assert!(individually_rational(&o, 1e-9));
        for i in 0..bids.len() {
            let report = probe_truthfulness(&bids, i, &default_factor_grid(), |b| {
                auction.run(b, &linear())
            });
            assert!(
                report.is_truthful(1e-9),
                "bidder {i} gains {}",
                report.max_gain()
            );
        }
    }

    #[test]
    #[should_panic(expected = "reserve_price must be finite")]
    fn rejects_negative_reserve() {
        let _ = VcgAuction::new(VcgConfig {
            reserve_price: Some(-1.0),
            ..VcgConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "cost_weight must be finite and positive")]
    fn rejects_zero_cost_weight() {
        let _ = VcgAuction::new(VcgConfig {
            cost_weight: 0.0,
            ..VcgConfig::default()
        });
    }
}
