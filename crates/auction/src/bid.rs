//! Bidder types for the reverse (procurement) auction.

/// A sealed bid submitted by one client in one round.
///
/// The *cost* is the client's private type (what it reports may differ from
/// the truth — the mechanism's job is to make truthful reporting optimal);
/// `data_size` and `quality` are assumed verifiable by the platform, as is
/// standard in FL incentive auctions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bid {
    /// Stable client identifier.
    pub bidder: usize,
    /// Reported cost of performing one round of local training (money or
    /// joules). Must be non-negative and finite.
    pub cost: f64,
    /// Number of local training examples the client commits.
    pub data_size: usize,
    /// Data quality score in `[0, 1]` (label noise, staleness, etc.).
    pub quality: f64,
}

impl Bid {
    /// Creates a bid.
    ///
    /// # Panics
    ///
    /// Panics if `cost` is negative or non-finite, or `quality` is outside
    /// `[0, 1]`.
    pub fn new(bidder: usize, cost: f64, data_size: usize, quality: f64) -> Self {
        assert!(
            cost.is_finite() && cost >= 0.0,
            "cost must be finite and >= 0"
        );
        assert!(
            (0.0..=1.0).contains(&quality),
            "quality must be in [0, 1], got {quality}"
        );
        Bid {
            bidder,
            cost,
            data_size,
            quality,
        }
    }

    /// Returns a copy of this bid with a different reported cost — the
    /// misreport used by truthfulness probes.
    ///
    /// # Panics
    ///
    /// Panics if the new cost is negative or non-finite.
    pub fn with_cost(mut self, cost: f64) -> Self {
        assert!(
            cost.is_finite() && cost >= 0.0,
            "cost must be finite and >= 0"
        );
        self.cost = cost;
        self
    }

    /// Quality-weighted data size, the scalar the default valuations use.
    pub fn effective_data(&self) -> f64 {
        self.data_size as f64 * self.quality
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_stores_fields() {
        let b = Bid::new(3, 2.5, 100, 0.75);
        assert_eq!(b.bidder, 3);
        assert_eq!(b.cost, 2.5);
        assert_eq!(b.data_size, 100);
        assert_eq!(b.quality, 0.75);
    }

    #[test]
    fn effective_data_weights_by_quality() {
        let b = Bid::new(0, 1.0, 200, 0.5);
        assert_eq!(b.effective_data(), 100.0);
    }

    #[test]
    fn with_cost_changes_only_cost() {
        let b = Bid::new(1, 1.0, 10, 0.9).with_cost(3.0);
        assert_eq!(b.cost, 3.0);
        assert_eq!(b.bidder, 1);
        assert_eq!(b.data_size, 10);
    }

    #[test]
    #[should_panic(expected = "cost must be finite")]
    fn rejects_negative_cost() {
        let _ = Bid::new(0, -1.0, 10, 0.5);
    }

    #[test]
    #[should_panic(expected = "cost must be finite")]
    fn rejects_nan_cost() {
        let _ = Bid::new(0, f64::NAN, 10, 0.5);
    }

    #[test]
    #[should_panic(expected = "quality must be in [0, 1]")]
    fn rejects_bad_quality() {
        let _ = Bid::new(0, 1.0, 10, 1.5);
    }
}
