//! `lovm` — command-line runner for the sustainable-FL auction simulator.
//!
//! ```text
//! lovm list
//! lovm simulate --scenario standard --mechanism lovm --v 50 --seed 42
//! lovm stream   --scenario standard --mechanism lovm --v 50 --seed 42
//! lovm compare  --scenario small --seed 7
//! lovm csv      --scenario standard --mechanism lovm --v 20 > run.csv
//! lovm serve    --addr 127.0.0.1:0 --v 20 --budget 2
//! lovm drive    --addr 127.0.0.1:7878 --session m1 --from 0 --to 8
//! lovm follow   --addr 127.0.0.1:7878 --session m1 --serve-addr 127.0.0.1:0
//! lovm attack   --trace bids.csv --v 10 --budget 50 --k 8
//! ```
//!
//! `stream` runs the same marketplace through the event-driven ingestion
//! loop; `LOVM_DEADLINE`, `LOVM_LATE_POLICY`, and `LOVM_BUFFER` configure
//! it (the defaults reproduce `simulate` bit-exactly).
//!
//! `serve` starts the event-sourced TCP market server: every session is
//! journaled under `LOVM_JOURNAL` (default `lovm-journal/`), snapshotted
//! every `LOVM_SNAPSHOT_EVERY` sealed rounds, and survives `kill -9` by
//! replaying the journal bit-identically. `drive` is the matching
//! deterministic client: bids for round `r` are regenerated statelessly
//! from `(--seed, r)`, so a re-run after a server crash re-sends exactly
//! the bids the lost round had and the recovered market cannot diverge.
//! It prints the server's `sealed`/`state` lines verbatim on stdout
//! (handshake chatter goes to stderr), making crash-recovery runs
//! byte-diffable against uninterrupted ones.
//!
//! `follow` attaches a live replica to a serving leader: it bootstraps
//! the session's committed journal verbatim into its own `LOVM_JOURNAL`
//! directory (which must differ from the leader's), replays every
//! streamed round through the same code path the leader ran — verifying
//! each journaled digest bitwise — and, when the leader's connection
//! drops, promotes itself to a `serve` on `--serve-addr` (without the
//! flag it just exits). Journals are bounded on disk by setting
//! `LOVM_COMPACT`: every that-many sealed rounds the prefix covered by
//! the latest snapshot is compacted away.

use metrics::json::JsonValue;
use simrng::{derive_seed, rngs::StdRng, RngExt, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use sustainable_fl::core::offline::{competitive_ratio, offline_benchmark};
use sustainable_fl::core::serve::{
    compact_every_from_env, journal_dir_from_env, snapshot_every_from_env, MarketServer,
    MarketSession, ServeConfig, SessionConfig,
};
use sustainable_fl::prelude::*;

#[derive(Clone)]
struct Args {
    command: String,
    scenario: String,
    mechanism: String,
    v: f64,
    seed: u64,
    price: f64,
    k: usize,
    budget: f64,
    addr: String,
    serve_addr: String,
    session: String,
    from: usize,
    to: usize,
    bidders: usize,
    partial: bool,
    trace: String,
    workload: String,
    rounds: usize,
    frames: usize,
    interval_ms: u64,
    file: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: String::new(),
        scenario: "standard".into(),
        mechanism: "lovm".into(),
        v: 50.0,
        seed: 42,
        price: 1.2,
        k: 4,
        budget: 2.0,
        addr: "127.0.0.1:7878".into(),
        serve_addr: String::new(),
        session: "market".into(),
        from: 0,
        to: 8,
        bidders: 6,
        partial: false,
        trace: String::new(),
        workload: "steady".into(),
        rounds: 40,
        frames: 0,
        interval_ms: 1000,
        file: String::new(),
    };
    let mut it = std::env::args().skip(1);
    args.command = it.next().ok_or_else(usage)?;
    while let Some(flag) = it.next() {
        if flag == "--partial" {
            args.partial = true;
            continue;
        }
        let mut value = || it.next().ok_or(format!("flag {flag} needs a value"));
        match flag.as_str() {
            "--scenario" => args.scenario = value()?,
            "--mechanism" => args.mechanism = value()?,
            "--v" => args.v = value()?.parse().map_err(|e| format!("--v: {e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--price" => args.price = value()?.parse().map_err(|e| format!("--price: {e}"))?,
            "--k" => args.k = value()?.parse().map_err(|e| format!("--k: {e}"))?,
            "--budget" => args.budget = value()?.parse().map_err(|e| format!("--budget: {e}"))?,
            "--addr" => args.addr = value()?,
            "--serve-addr" => args.serve_addr = value()?,
            "--session" => args.session = value()?,
            "--from" => args.from = value()?.parse().map_err(|e| format!("--from: {e}"))?,
            "--to" => args.to = value()?.parse().map_err(|e| format!("--to: {e}"))?,
            "--bidders" => {
                args.bidders = value()?.parse().map_err(|e| format!("--bidders: {e}"))?
            }
            "--trace" => args.trace = value()?,
            "--workload" => args.workload = value()?,
            "--rounds" => args.rounds = value()?.parse().map_err(|e| format!("--rounds: {e}"))?,
            "--frames" => args.frames = value()?.parse().map_err(|e| format!("--frames: {e}"))?,
            "--interval-ms" => {
                args.interval_ms = value()?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?
            }
            "--file" => args.file = value()?,
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: lovm <list|simulate|stream|compare|csv|serve|drive|follow|attack|top|telemetry-check> \
     [--scenario NAME] \
     [--mechanism NAME] [--v V] [--seed SEED] [--price P] [--k K] [--budget RHO] \
     [--addr HOST:PORT] [--serve-addr HOST:PORT] [--session NAME] [--from R] [--to R] \
     [--bidders N] [--partial] [--trace FILE.csv] [--workload steady|late-rush] [--rounds R] \
     [--frames N] [--interval-ms MS] [--file PATH]\n\
     scenarios: small, standard, energy-heterogeneous, solar-fleet, large-<N>\n\
     mechanisms: lovm, myopic, greedy, proportional, fixed, random, all\n\
     top polls a serving market's `stats` command (--frames 0 = forever); \
     telemetry-check validates a LOVM_TELEMETRY record file"
        .into()
}

fn scenario_by_name(name: &str) -> Result<Scenario, String> {
    match name {
        "small" => Ok(Scenario::small()),
        "standard" => Ok(Scenario::standard()),
        "energy-heterogeneous" => Ok(Scenario::energy_heterogeneous()),
        "solar-fleet" => Ok(Scenario::solar_fleet()),
        other => {
            if let Some(n) = other.strip_prefix("large-") {
                let n: usize = n.parse().map_err(|e| format!("bad population: {e}"))?;
                Ok(Scenario::large(n))
            } else {
                Err(format!("unknown scenario `{other}`\n{}", usage()))
            }
        }
    }
}

fn mechanism_by_name(args: &Args, scenario: &Scenario) -> Result<Box<dyn Mechanism>, String> {
    let valuation = scenario.valuation;
    Ok(match args.mechanism.as_str() {
        "lovm" => Box::new(Lovm::new(LovmConfig::for_scenario(scenario, args.v))),
        "myopic" => Box::new(MyopicVcg::new(valuation, None)),
        "greedy" => Box::new(BudgetSplitGreedy::new(valuation, None)),
        "proportional" => Box::new(ProportionalShare::new(valuation)),
        "fixed" => Box::new(FixedPrice::new(args.price, valuation, None)),
        "random" => Box::new(RandomK::new(args.k, valuation, args.seed)),
        "all" => Box::new(AllAvailable::new(valuation)),
        other => return Err(format!("unknown mechanism `{other}`\n{}", usage())),
    })
}

fn summarize(result: &sustainable_fl::core::SimulationResult, scenario: &Scenario) {
    let oracle = offline_benchmark(
        &result.bids_per_round,
        &scenario.valuation,
        scenario.total_budget,
    );
    let welfare = result.ledger.social_welfare();
    println!("mechanism        : {}", result.mechanism);
    println!("scenario         : {}", result.scenario);
    println!("rounds           : {}", result.outcomes.len());
    println!("social welfare   : {welfare:.1}");
    println!("oracle welfare   : {:.1}", oracle.welfare);
    println!(
        "competitive ratio: {:.3}",
        competitive_ratio(welfare, &oracle)
    );
    println!(
        "spend / budget   : {:.1} / {:.1}",
        result.ledger.total_payment(),
        scenario.total_budget
    );
    println!("client utility   : {:.1}", result.ledger.client_utility());
    println!("platform utility : {:.1}", result.ledger.platform_utility());
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    match args.command.as_str() {
        "list" => {
            println!("scenarios : small, standard, energy-heterogeneous, solar-fleet, large-<N>");
            println!("mechanisms: lovm, myopic, greedy, proportional, fixed, random, all");
            Ok(())
        }
        "simulate" => {
            let scenario = scenario_by_name(&args.scenario)?;
            let mut mech = mechanism_by_name(&args, &scenario)?;
            let result = simulate(mech.as_mut(), &scenario, args.seed);
            summarize(&result, &scenario);
            Ok(())
        }
        "csv" => {
            let scenario = scenario_by_name(&args.scenario)?;
            let mut mech = mechanism_by_name(&args, &scenario)?;
            let result = simulate(mech.as_mut(), &scenario, args.seed);
            print!("{}", result.series.to_csv());
            Ok(())
        }
        "stream" => {
            let scenario = scenario_by_name(&args.scenario)?;
            let mut mech = mechanism_by_name(&args, &scenario)?;
            let cfg = sustainable_fl::ingest::IngestConfig::from_env();
            let run = sustainable_fl::core::streaming::run_stream(
                mech.as_mut(),
                &scenario,
                args.seed,
                &cfg,
            );
            summarize(&run.result, &scenario);
            println!(
                "ingestion        : deadline {:.2}, policy {:?}, buffer {:?}x{}",
                cfg.deadline, cfg.late_policy, cfg.backpressure, cfg.capacity
            );
            println!(
                "arrivals {} / sealed {} (late {}) / deferred {} / dropped {} / shed {} / peak buffer {}",
                run.totals.arrivals,
                run.totals.sealed,
                run.totals.admitted_late,
                run.totals.deferred,
                run.totals.dropped,
                run.totals.shed,
                run.totals.buffer_peak
            );
            Ok(())
        }
        "compare" => {
            let scenario = scenario_by_name(&args.scenario)?;
            let names = [
                "lovm",
                "myopic",
                "greedy",
                "proportional",
                "fixed",
                "random",
            ];
            let mut table = metrics::Table::new(vec![
                "mechanism".into(),
                "welfare".into(),
                "ratio".into(),
                "spend".into(),
                "feasible".into(),
            ]);
            for name in names {
                let a = Args {
                    mechanism: name.into(),
                    ..args.clone()
                };
                let mut mech = mechanism_by_name(&a, &scenario)?;
                let result = simulate(mech.as_mut(), &scenario, args.seed);
                let oracle = offline_benchmark(
                    &result.bids_per_round,
                    &scenario.valuation,
                    scenario.total_budget,
                );
                let welfare = result.ledger.social_welfare();
                let spend = result.ledger.total_payment();
                table.row(vec![
                    result.mechanism.clone(),
                    format!("{welfare:.1}"),
                    format!("{:.3}", competitive_ratio(welfare, &oracle)),
                    format!("{spend:.1}"),
                    if spend <= scenario.total_budget * 1.05 {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                ]);
            }
            println!("{}", table.to_markdown());
            Ok(())
        }
        "serve" => serve(&args),
        "drive" => drive(&args),
        "follow" => follow(&args),
        "attack" => attack(&args),
        "top" => top(&args),
        "telemetry-check" => telemetry_check(&args),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// Runs the strategic-adversary catalog against a bid trace — recorded
/// (`--trace FILE.csv`, header `at,bidder,cost,data,quality`) or seeded
/// (`--workload`/`--bidders`/`--rounds`/`--seed`) — through the real
/// ingest → seal → VCG path, and prints the paired-counterfactual regret
/// table. Ingestion knobs come from the environment (`LOVM_DEADLINE`,
/// `LOVM_LATE_POLICY`, `LOVM_BUFFER`), the topology from `LOVM_SHARDS`.
/// Exits nonzero if any strategy's regret dips below −1e-9 — i.e. if a
/// deviation from truthful play *profited* on this trace. Note the
/// truthfulness theorem speaks when the budget rate is slack (the virtual
/// queue stays empty); a binding `--budget` can legitimately fail.
fn attack(args: &Args) -> Result<(), String> {
    use sustainable_fl::advsim::{
        catalog, gate, regret_table, run_cell, Cell, Trace, TraceWorkload,
    };

    let trace = if args.trace.is_empty() {
        let workload = match args.workload.as_str() {
            "steady" => TraceWorkload::Steady,
            "late-rush" => TraceWorkload::LateRush,
            other => return Err(format!("unknown workload `{other}` (steady, late-rush)")),
        };
        Trace::seeded(workload, args.bidders, args.rounds, args.seed)
    } else {
        let text = std::fs::read_to_string(&args.trace)
            .map_err(|e| format!("cannot read {}: {e}", args.trace))?;
        Trace::from_csv(&text).map_err(|e| format!("{}: {e}", args.trace))?
    };
    let ingest = sustainable_fl::ingest::IngestConfig::from_env();
    let lovm = LovmConfig {
        v: args.v,
        budget_per_round: args.budget,
        max_winners: Some(args.k),
        ..LovmConfig::default()
    };
    let policy = format!(
        "{}@{}",
        match ingest.late_policy {
            sustainable_fl::ingest::LateBidPolicy::Drop => "drop".to_string(),
            sustainable_fl::ingest::LateBidPolicy::DeferToNext => "defer".to_string(),
            sustainable_fl::ingest::LateBidPolicy::GraceWindow { grace } =>
                format!("grace:{grace}"),
        },
        ingest.deadline
    );
    let source = if args.trace.is_empty() {
        format!(
            "seeded {} x {} bidders x {} rounds",
            args.workload, args.bidders, args.rounds
        )
    } else {
        args.trace.clone()
    };
    println!(
        "attack: trace {source}, seed {}, topology {}, policy {policy}, V {}, rho {}, k {}",
        args.seed,
        sustainable_fl::advsim::topology_label(lovm.topology),
        args.v,
        args.budget,
        args.k
    );
    let cell = Cell {
        workload: args.workload.clone(),
        policy,
        topology: lovm.topology,
        ingest,
    };
    let reports: Vec<_> = catalog()
        .iter()
        .map(|s| run_cell(&trace, s, &cell, lovm, args.seed, par::Pool::auto()))
        .collect();
    println!("{}", regret_table(&reports).to_markdown());
    match gate(&reports, 1e-9) {
        Ok(()) => {
            println!("gate: no strategy profited by deviating (all regret >= -1e-9)");
            Ok(())
        }
        Err(msg) => Err(msg),
    }
}

fn serve_config(args: &Args, addr: &str) -> ServeConfig {
    ServeConfig {
        addr: addr.into(),
        journal_dir: journal_dir_from_env(),
        snapshot_every: snapshot_every_from_env(),
        compact_every: compact_every_from_env(),
        lovm: LovmConfig {
            v: args.v,
            budget_per_round: args.budget,
            max_winners: Some(args.k),
            ..LovmConfig::default()
        },
        ingest: sustainable_fl::ingest::IngestConfig::from_env(),
    }
}

fn run_server(cfg: ServeConfig) -> Result<(), String> {
    let journal_dir = cfg.journal_dir.clone();
    let server = MarketServer::bind(cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    // Scripts poll for this line to learn an ephemeral port.
    println!("listening on {addr}");
    println!("journaling to {}", journal_dir.display());
    server.run().map_err(|e| e.to_string())
}

fn serve(args: &Args) -> Result<(), String> {
    run_server(serve_config(args, &args.addr))
}

/// Attaches a live replica to a serving leader (see the module docs):
/// bootstrap the committed journal verbatim, replay the live feed
/// through `MarketSession::apply_replicated` (each journaled digest
/// verified bitwise), and on leader death promote to a full server on
/// `--serve-addr`.
fn follow(args: &Args) -> Result<(), String> {
    let journal_dir = journal_dir_from_env();
    std::fs::create_dir_all(&journal_dir).map_err(|e| e.to_string())?;
    let stream =
        TcpStream::connect(&args.addr).map_err(|e| format!("connect {}: {e}", args.addr))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut out = stream;
    send_line(
        &mut out,
        JsonValue::object()
            .field("cmd", "follow")
            .field("session", args.session.as_str()),
    )?;
    let (boot_raw, boot) = read_event(&mut reader)?;
    let backlog = boot
        .get("lines")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| format!("malformed bootstrap `{boot_raw}`"))?;
    eprintln!("{boot_raw}");

    // The bootstrap *is* the leader's committed journal (compaction
    // header included): write it verbatim so the replica journal starts
    // byte-identical, then open it through the normal recovery path.
    let journal_path = journal_dir.join(format!("{}.jsonl", args.session));
    {
        let mut file = std::fs::File::create(&journal_path).map_err(|e| e.to_string())?;
        for _ in 0..backlog {
            let line = read_line(&mut reader)?;
            file.write_all(line.as_bytes())
                .and_then(|()| file.write_all(b"\n"))
                .map_err(|e| e.to_string())?;
        }
        file.sync_data().map_err(|e| e.to_string())?;
    }
    let (live_raw, live) = read_event(&mut reader)?;
    if live.get("event").and_then(JsonValue::as_str) != Some("live") {
        return Err(format!("expected the live marker, got `{live_raw}`"));
    }

    let mut session_cfg = SessionConfig::new(&journal_path);
    session_cfg.snapshot = Some(journal_dir.join(format!("{}.snapshot.json", args.session)));
    session_cfg.snapshot_every = snapshot_every_from_env();
    session_cfg.compact_every = compact_every_from_env();
    session_cfg.lovm = LovmConfig {
        v: args.v,
        budget_per_round: args.budget,
        max_winners: Some(args.k),
        ..LovmConfig::default()
    };
    session_cfg.ingest = sustainable_fl::ingest::IngestConfig::from_env();
    let mut session =
        MarketSession::open(session_cfg).map_err(|e| format!("cannot open replica: {e}"))?;
    eprintln!(
        "replica live at round {} digest {:016x}",
        session.rounds_sealed(),
        session.digest()
    );

    // Every line from here on is a committed journal event; outcomes are
    // the follower's commit points. EOF means the leader died.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(format!("feed read: {e}")),
        }
        let line = line.trim_end_matches('\n');
        if line.is_empty() {
            continue;
        }
        let applied = session
            .apply_replicated(line)
            .map_err(|e| format!("replica diverged: {e}"))?;
        if let Some((round, digest)) = applied {
            eprintln!("replicated round {round} digest {digest:016x}");
        }
    }
    drop((reader, out));

    if args.serve_addr.is_empty() {
        eprintln!(
            "leader gone at round {} digest {:016x}; exiting (no --serve-addr)",
            session.rounds_sealed(),
            session.digest()
        );
        return Ok(());
    }
    eprintln!(
        "leader gone at round {}; promoting on {}",
        session.rounds_sealed(),
        args.serve_addr
    );
    drop(session);
    let mut cfg = serve_config(args, &args.serve_addr);
    cfg.journal_dir = journal_dir;
    run_server(cfg)
}

fn send_line(out: &mut TcpStream, v: JsonValue) -> Result<(), String> {
    let mut line = v.to_string();
    line.push('\n');
    out.write_all(line.as_bytes()).map_err(|e| e.to_string())
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err("server closed the connection".into()),
        Ok(_) => Ok(line.trim_end().to_string()),
        Err(e) => Err(e.to_string()),
    }
}

/// Reads one response line, failing fast on a server-reported error.
fn read_event(reader: &mut BufReader<TcpStream>) -> Result<(String, JsonValue), String> {
    let raw = read_line(reader)?;
    let v =
        JsonValue::parse(&raw).map_err(|e| format!("malformed response `{raw}`: {}", e.message))?;
    if v.get("event").and_then(JsonValue::as_str) == Some("error") {
        let msg = v
            .get("message")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown error");
        return Err(format!("server error: {msg}"));
    }
    Ok((raw, v))
}

fn drive(args: &Args) -> Result<(), String> {
    // Decorrelates drive bids from every other consumer of the seed.
    const DRIVE_SALT: u64 = 0x6D61_726B_6574_6462;
    let stream =
        TcpStream::connect(&args.addr).map_err(|e| format!("connect {}: {e}", args.addr))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut out = stream;
    send_line(
        &mut out,
        JsonValue::object()
            .field("cmd", "hello")
            .field("session", args.session.as_str()),
    )?;
    let (welcome_raw, welcome) = read_event(&mut reader)?;
    let resumed = welcome
        .get("rounds")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| format!("malformed welcome `{welcome_raw}`"))?;
    // Handshake chatter goes to stderr: stdout carries only the
    // sealed/state lines so interrupted runs concatenate byte-identically.
    eprintln!("{welcome_raw}");

    // Rounds the server already sealed are skipped; the bids of the round
    // it lost in a crash are regenerated *identically* below.
    let start = args.from.max(resumed);
    for round in start..args.to {
        let mut rng = StdRng::seed_from_u64(derive_seed(args.seed ^ DRIVE_SALT, round as u64));
        for bidder in 0..args.bidders {
            let at = round as f64 + rng.random_range(0.05..0.95);
            let cost = rng.random_range(0.5..3.0);
            let data = rng.random_range(50..500usize);
            let quality = rng.random_range(0.5..1.0);
            send_line(
                &mut out,
                JsonValue::object()
                    .field("cmd", "bid")
                    .field("at", at)
                    .field("bidder", bidder)
                    .field("cost", cost)
                    .field("data", data)
                    .field("quality", quality),
            )?;
            read_event(&mut reader)?;
        }
        if args.partial && round + 1 == args.to {
            // Leave the last round's bids journaled but unsealed — the
            // crash-recovery smoke kills the server right after this.
            return Ok(());
        }
        send_line(&mut out, JsonValue::object().field("cmd", "seal"))?;
        let (sealed_raw, _) = read_event(&mut reader)?;
        println!("{sealed_raw}");
    }
    send_line(&mut out, JsonValue::object().field("cmd", "state"))?;
    let (state_raw, _) = read_event(&mut reader)?;
    println!("{state_raw}");
    send_line(&mut out, JsonValue::object().field("cmd", "quit"))?;
    let _ = read_line(&mut reader);
    Ok(())
}

/// `lovm top` — polls a serving market's `stats` command and renders a
/// terminal dashboard: counter rates, gauges, latency histograms with
/// exact quantiles, and bucket-distribution sparklines for the solver
/// and journal hot spots. `--frames N` bounds the run (0 = forever) so
/// CI can take one frame non-interactively; on a TTY each frame redraws
/// in place.
fn top(args: &Args) -> Result<(), String> {
    use std::io::IsTerminal;
    let stream =
        TcpStream::connect(&args.addr).map_err(|e| format!("connect {}: {e}", args.addr))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut out = stream;
    let redraw = std::io::stdout().is_terminal();
    let mut prev: Option<(std::time::Instant, Vec<(String, f64)>)> = None;
    let mut frame = 0usize;
    loop {
        send_line(&mut out, JsonValue::object().field("cmd", "stats"))?;
        let (_, v) = read_event(&mut reader)?;
        let registry = v
            .get("registry")
            .ok_or("stats response carries no registry")?;
        let now = std::time::Instant::now();
        let rates = prev
            .as_ref()
            .map(|(t, c)| (now.duration_since(*t).as_secs_f64(), c.as_slice()));
        let text = render_top(registry, rates, &args.addr);
        if redraw {
            // Clear + home, so the dashboard redraws in place.
            print!("\x1b[2J\x1b[H");
        }
        println!("{text}");
        prev = Some((now, counter_values(registry)));
        frame += 1;
        if args.frames != 0 && frame >= args.frames {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(args.interval_ms));
    }
    send_line(&mut out, JsonValue::object().field("cmd", "quit"))?;
    Ok(())
}

/// The `(name, value)` counter list of a `stats` registry, for rate
/// deltas between frames.
fn counter_values(registry: &JsonValue) -> Vec<(String, f64)> {
    registry
        .get("counters")
        .and_then(JsonValue::entries)
        .map(|fields| {
            fields
                .iter()
                .filter_map(|(k, v)| Some((k.clone(), v.as_f64()?)))
                .collect()
        })
        .unwrap_or_default()
}

/// Nanoseconds, humanized (`842ns`, `13.5us`, `2.41ms`, `1.07s`).
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

fn render_top(registry: &JsonValue, rates: Option<(f64, &[(String, f64)])>, addr: &str) -> String {
    let mut text = String::new();
    let enabled = registry
        .get("enabled")
        .and_then(JsonValue::as_bool)
        .unwrap_or(false);
    text.push_str(&format!(
        "lovm top — {addr} — telemetry {}\n\n",
        if enabled {
            "on"
        } else {
            "off (set LOVM_TELEMETRY on the server)"
        }
    ));

    let mut counters = metrics::Table::new(vec!["counter".into(), "total".into(), "per-s".into()]);
    for (name, v) in registry
        .get("counters")
        .and_then(JsonValue::entries)
        .unwrap_or(&[])
    {
        let Some(total) = v.as_f64() else { continue };
        let rate = rates
            .and_then(|(dt, prev)| {
                let before = prev.iter().find(|(k, _)| k == name)?.1;
                (dt > 0.0).then(|| format!("{:.1}", (total - before).max(0.0) / dt))
            })
            .unwrap_or_else(|| "-".into());
        counters.row(vec![name.clone(), format!("{total:.0}"), rate]);
    }
    text.push_str(&counters.to_markdown());
    text.push('\n');

    let mut gauges = metrics::Table::new(vec!["gauge".into(), "value".into()]);
    for (name, v) in registry
        .get("gauges")
        .and_then(JsonValue::entries)
        .unwrap_or(&[])
    {
        let Some(value) = v.as_f64() else { continue };
        gauges.row(vec![name.clone(), format!("{value:.1}")]);
    }
    text.push_str(&gauges.to_markdown());
    text.push('\n');

    let mut hists = metrics::Table::new(vec![
        "histogram".into(),
        "count".into(),
        "p50".into(),
        "p95".into(),
        "p99".into(),
        "max".into(),
    ]);
    let hist_fields = registry
        .get("hists")
        .and_then(JsonValue::entries)
        .unwrap_or(&[]);
    for (name, h) in hist_fields {
        let count = h.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
        if count == 0 {
            continue;
        }
        let q = |key: &str| {
            h.get(key)
                .and_then(JsonValue::as_f64)
                .map_or_else(|| "-".into(), fmt_ns)
        };
        hists.row(vec![
            name.clone(),
            count.to_string(),
            q("p50_ns"),
            q("p95_ns"),
            q("p99_ns"),
            q("max_ns"),
        ]);
    }
    text.push_str(&hists.to_markdown());

    // Bucket-distribution sparklines for the hot spots: per-shard WDP
    // solves, whole rounds, and the fsync cliff.
    for spark in ["solve.shard_ns", "solve.round_ns", "journal.fsync_ns"] {
        let Some(h) = hist_fields.iter().find(|(k, _)| k == spark).map(|(_, h)| h) else {
            continue;
        };
        let counts: Vec<f64> = h
            .get("buckets")
            .and_then(JsonValue::as_array)
            .map(|pairs| {
                pairs
                    .iter()
                    .filter_map(|p| p.as_array()?.get(1)?.as_f64())
                    .collect()
            })
            .unwrap_or_default();
        if counts.len() < 2 {
            continue;
        }
        text.push('\n');
        text.push_str(&format!(
            "{spark} — occupied latency buckets, low to high:\n"
        ));
        text.push_str(&metrics::plot::ascii_chart(
            &[(spark, &counts)],
            counts.len().min(64),
            6,
        ));
    }
    text
}

/// `lovm telemetry-check --file PATH` — validates every line of an
/// emitted `LOVM_TELEMETRY` record file: parseable via the same JSON
/// layer the repo journals with, schema-tagged, all contract fields
/// present. Nonzero exit (with the offending line) on the first failure.
fn telemetry_check(args: &Args) -> Result<(), String> {
    if args.file.is_empty() {
        return Err("telemetry-check needs --file PATH".into());
    }
    let text = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let mut checked = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        sustainable_fl::core::obs::validate_round_line(line)
            .map_err(|e| format!("{}:{}: {e}\n  {line}", args.file, i + 1))?;
        checked += 1;
    }
    if checked == 0 {
        return Err(format!("{}: no telemetry records found", args.file));
    }
    println!("{checked} telemetry records validated ({})", args.file);
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
