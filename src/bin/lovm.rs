//! `lovm` — command-line runner for the sustainable-FL auction simulator.
//!
//! ```text
//! lovm list
//! lovm simulate --scenario standard --mechanism lovm --v 50 --seed 42
//! lovm stream   --scenario standard --mechanism lovm --v 50 --seed 42
//! lovm compare  --scenario small --seed 7
//! lovm csv      --scenario standard --mechanism lovm --v 20 > run.csv
//! ```
//!
//! `stream` runs the same marketplace through the event-driven ingestion
//! loop; `LOVM_DEADLINE`, `LOVM_LATE_POLICY`, and `LOVM_BUFFER` configure
//! it (the defaults reproduce `simulate` bit-exactly).

use std::process::ExitCode;
use sustainable_fl::core::offline::{competitive_ratio, offline_benchmark};
use sustainable_fl::prelude::*;

struct Args {
    command: String,
    scenario: String,
    mechanism: String,
    v: f64,
    seed: u64,
    price: f64,
    k: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: String::new(),
        scenario: "standard".into(),
        mechanism: "lovm".into(),
        v: 50.0,
        seed: 42,
        price: 1.2,
        k: 4,
    };
    let mut it = std::env::args().skip(1);
    args.command = it.next().ok_or_else(usage)?;
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or(format!("flag {flag} needs a value"));
        match flag.as_str() {
            "--scenario" => args.scenario = value()?,
            "--mechanism" => args.mechanism = value()?,
            "--v" => args.v = value()?.parse().map_err(|e| format!("--v: {e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--price" => args.price = value()?.parse().map_err(|e| format!("--price: {e}"))?,
            "--k" => args.k = value()?.parse().map_err(|e| format!("--k: {e}"))?,
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: lovm <list|simulate|stream|compare|csv> [--scenario NAME] [--mechanism NAME] \
     [--v V] [--seed SEED] [--price P] [--k K]\n\
     scenarios: small, standard, energy-heterogeneous, solar-fleet, large-<N>\n\
     mechanisms: lovm, myopic, greedy, proportional, fixed, random, all"
        .into()
}

fn scenario_by_name(name: &str) -> Result<Scenario, String> {
    match name {
        "small" => Ok(Scenario::small()),
        "standard" => Ok(Scenario::standard()),
        "energy-heterogeneous" => Ok(Scenario::energy_heterogeneous()),
        "solar-fleet" => Ok(Scenario::solar_fleet()),
        other => {
            if let Some(n) = other.strip_prefix("large-") {
                let n: usize = n.parse().map_err(|e| format!("bad population: {e}"))?;
                Ok(Scenario::large(n))
            } else {
                Err(format!("unknown scenario `{other}`\n{}", usage()))
            }
        }
    }
}

fn mechanism_by_name(args: &Args, scenario: &Scenario) -> Result<Box<dyn Mechanism>, String> {
    let valuation = scenario.valuation;
    Ok(match args.mechanism.as_str() {
        "lovm" => Box::new(Lovm::new(LovmConfig::for_scenario(scenario, args.v))),
        "myopic" => Box::new(MyopicVcg::new(valuation, None)),
        "greedy" => Box::new(BudgetSplitGreedy::new(valuation, None)),
        "proportional" => Box::new(ProportionalShare::new(valuation)),
        "fixed" => Box::new(FixedPrice::new(args.price, valuation, None)),
        "random" => Box::new(RandomK::new(args.k, valuation, args.seed)),
        "all" => Box::new(AllAvailable::new(valuation)),
        other => return Err(format!("unknown mechanism `{other}`\n{}", usage())),
    })
}

fn summarize(result: &sustainable_fl::core::SimulationResult, scenario: &Scenario) {
    let oracle = offline_benchmark(
        &result.bids_per_round,
        &scenario.valuation,
        scenario.total_budget,
    );
    let welfare = result.ledger.social_welfare();
    println!("mechanism        : {}", result.mechanism);
    println!("scenario         : {}", result.scenario);
    println!("rounds           : {}", result.outcomes.len());
    println!("social welfare   : {welfare:.1}");
    println!("oracle welfare   : {:.1}", oracle.welfare);
    println!(
        "competitive ratio: {:.3}",
        competitive_ratio(welfare, &oracle)
    );
    println!(
        "spend / budget   : {:.1} / {:.1}",
        result.ledger.total_payment(),
        scenario.total_budget
    );
    println!("client utility   : {:.1}", result.ledger.client_utility());
    println!("platform utility : {:.1}", result.ledger.platform_utility());
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    match args.command.as_str() {
        "list" => {
            println!("scenarios : small, standard, energy-heterogeneous, solar-fleet, large-<N>");
            println!("mechanisms: lovm, myopic, greedy, proportional, fixed, random, all");
            Ok(())
        }
        "simulate" => {
            let scenario = scenario_by_name(&args.scenario)?;
            let mut mech = mechanism_by_name(&args, &scenario)?;
            let result = simulate(mech.as_mut(), &scenario, args.seed);
            summarize(&result, &scenario);
            Ok(())
        }
        "csv" => {
            let scenario = scenario_by_name(&args.scenario)?;
            let mut mech = mechanism_by_name(&args, &scenario)?;
            let result = simulate(mech.as_mut(), &scenario, args.seed);
            print!("{}", result.series.to_csv());
            Ok(())
        }
        "stream" => {
            let scenario = scenario_by_name(&args.scenario)?;
            let mut mech = mechanism_by_name(&args, &scenario)?;
            let cfg = sustainable_fl::ingest::IngestConfig::from_env();
            let run = sustainable_fl::core::streaming::run_stream(
                mech.as_mut(),
                &scenario,
                args.seed,
                &cfg,
            );
            summarize(&run.result, &scenario);
            println!(
                "ingestion        : deadline {:.2}, policy {:?}, buffer {:?}x{}",
                cfg.deadline, cfg.late_policy, cfg.backpressure, cfg.capacity
            );
            println!(
                "arrivals {} / sealed {} (late {}) / deferred {} / dropped {} / shed {} / peak buffer {}",
                run.totals.arrivals,
                run.totals.sealed,
                run.totals.admitted_late,
                run.totals.deferred,
                run.totals.dropped,
                run.totals.shed,
                run.totals.buffer_peak
            );
            Ok(())
        }
        "compare" => {
            let scenario = scenario_by_name(&args.scenario)?;
            let names = [
                "lovm",
                "myopic",
                "greedy",
                "proportional",
                "fixed",
                "random",
            ];
            let mut table = metrics::Table::new(vec![
                "mechanism".into(),
                "welfare".into(),
                "ratio".into(),
                "spend".into(),
                "feasible".into(),
            ]);
            for name in names {
                let a = Args {
                    mechanism: name.into(),
                    ..Args {
                        command: args.command.clone(),
                        scenario: args.scenario.clone(),
                        mechanism: String::new(),
                        v: args.v,
                        seed: args.seed,
                        price: args.price,
                        k: args.k,
                    }
                };
                let mut mech = mechanism_by_name(&a, &scenario)?;
                let result = simulate(mech.as_mut(), &scenario, args.seed);
                let oracle = offline_benchmark(
                    &result.bids_per_round,
                    &scenario.valuation,
                    scenario.total_budget,
                );
                let welfare = result.ledger.social_welfare();
                let spend = result.ledger.total_payment();
                table.row(vec![
                    result.mechanism.clone(),
                    format!("{welfare:.1}"),
                    format!("{:.3}", competitive_ratio(welfare, &oracle)),
                    format!("{spend:.1}"),
                    if spend <= scenario.total_budget * 1.05 {
                        "yes".into()
                    } else {
                        "NO".into()
                    },
                ]);
            }
            println!("{}", table.to_markdown());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
