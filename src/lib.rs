//! # sustainable-fl — Sustainable Federated Learning with a Long-term Online VCG Auction
//!
//! Umbrella crate re-exporting the full reproduction stack:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`](mod@core) | `lovm-core` | the LOVM mechanism, simulator, FL orchestrator, offline oracle |
//! | [`auction`](mod@auction) | `auction` | bids, valuations, WDP solvers, VCG & critical payments, property checks |
//! | [`lyapunov`](mod@lyapunov) | `lyapunov` | virtual queues, drift-plus-penalty, bound calculators |
//! | [`fedsim`](mod@fedsim) | `fedsim` | datasets, models, optimizers, FedAvg |
//! | [`energy`](mod@energy) | `energy` | batteries, harvesting processes, cost models |
//! | [`workload`](mod@workload) | `workload` | client populations, availability, arrival streams, scenarios |
//! | [`ingest`](mod@ingest) | `ingest` | event-driven streaming bid ingestion: deadlines, late-bid policy, backpressure |
//! | [`journal`](mod@journal) | `journal` | event-sourced market journal: append-only log, snapshots, torn-tail recovery |
//! | [`baselines`](mod@baselines) | `baselines` | every comparator mechanism |
//! | [`advsim`](mod@advsim) | `advsim` | strategic-adversary simulator: strategy agents, paired-counterfactual regret |
//! | [`metrics`](mod@metrics) | `metrics` | statistics, series, tables |
//!
//! See `examples/quickstart.rs` for a five-minute tour and EXPERIMENTS.md
//! for the full evaluation suite.

pub use advsim;
pub use auction;
pub use baselines;
pub use energy;
pub use fedsim;
pub use ingest;
pub use journal;
pub use lovm_core as core;
pub use lyapunov;
pub use metrics;
pub use workload;

/// Convenience prelude with the types most programs need.
pub mod prelude {
    pub use auction::{Bid, ClientValue, Valuation};
    pub use baselines::{
        AllAvailable, BudgetSplitGreedy, FixedPrice, MyopicVcg, ProportionalShare, RandomK,
    };
    pub use lovm_core::{
        offline_benchmark, simulate, EconomicLedger, Lovm, LovmConfig, Mechanism, RoundInfo,
        SimulationResult,
    };
    pub use workload::Scenario;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links_all_crates() {
        use crate::prelude::*;
        let scenario = Scenario::small();
        let mech = Lovm::new(LovmConfig::for_scenario(&scenario, 5.0));
        assert!(mech.name().starts_with("LOVM"));
    }
}
