#!/usr/bin/env bash
# Tier-1 verify as one command: build everything in release mode, run the
# whole-workspace test suite, and hold the tree to zero clippy warnings.
# The workspace has no external dependencies, so this runs fully offline.
#
# The test suite runs twice — serial (LOVM_THREADS=1) and on a 4-worker
# pool — because the parallel execution layer (crates/par) guarantees
# bit-identical output at any worker count and both modes must stay green.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
LOVM_THREADS=1 cargo test -q
LOVM_THREADS=4 cargo test -q
cargo clippy --all-targets -- -D warnings

# Smoke the payment-path benchmark in both modes (tiny sample counts: this
# checks the bins run and report, not the timings themselves).
for t in 1 4; do
  LOVM_THREADS=$t LOVM_BENCH_SAMPLES=5 LOVM_BENCH_BATCH_NS=200000 \
    ./target/release/bench_payments > /dev/null
done

echo "ci: all green"
