#!/usr/bin/env bash
# Tier-1 verify as one command: build everything in release mode, run the
# whole-workspace test suite, and hold the tree to zero clippy warnings.
# The workspace has no external dependencies, so this runs fully offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings

echo "ci: all green"
