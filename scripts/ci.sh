#!/usr/bin/env bash
# Tier-1 verify as one command: check formatting, build everything in
# release mode, run the whole-workspace test suite, and hold the tree to
# zero clippy warnings. The workspace has no external dependencies, so
# this runs fully offline.
#
# The test suite runs under a worker × shard matrix — LOVM_THREADS ∈ {1,4}
# crossed with LOVM_SHARDS ∈ {1,8} — because two layers each guarantee
# invariant output: the parallel execution layer (crates/par) is
# bit-identical at any worker count, and the sharded market engine
# (auction::shard) is bit-identical to the monolithic path on the top-K
# rounds the LOVM loop runs (LOVM_SHARDS only re-routes those rounds).
# Every cell includes the golden-output suite (crates/bench
# tests/golden_experiments.rs: every exp_e* bin's stdout vs
# tests/golden/*.md) and the payment-engine differential suite
# (crates/auction tests/pivot_equivalence.rs: incremental vs naive vs
# oracle, bit-identical), so all four cells re-prove both contracts off
# the same snapshots.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
for shards in 1 8; do
  for threads in 1 4; do
    echo "ci: test pass LOVM_SHARDS=$shards LOVM_THREADS=$threads"
    LOVM_SHARDS=$shards LOVM_THREADS=$threads cargo test -q
  done
done
# One more whole-suite pass with telemetry live: the sink is a real file,
# so every golden-output and determinism test re-proves the pure-observer
# contract with recording and emission enabled (the zero-alloc audit also
# covers its telemetry-on phase under a configured global sink).
telemetry_log=$(mktemp)
echo "ci: test pass LOVM_TELEMETRY=$telemetry_log"
LOVM_TELEMETRY="$telemetry_log" cargo test -q
rm -f "$telemetry_log"
cargo clippy --all-targets -- -D warnings

# Smoke the sharded-market experiment: a 10⁵-bidder (scale 0.1) budgeted
# round through partition → per-shard solve → champion reconciliation.
LOVM_SCALE=0.1 ./target/release/exp_e14_sharding > /dev/null
echo "ci: exp_e14_sharding smoke ok"

# Smoke the streaming-ingestion experiment at both worker counts: the
# virtual-time driver is deterministic, so both passes must produce the
# byte-identical table set (the golden suite already pins its content).
e15_ref=""
for t in 1 4; do
  out=$(LOVM_SCALE=0.1 LOVM_THREADS=$t ./target/release/exp_e15_streaming)
  if [ "$t" = 1 ]; then
    e15_ref="$out"
  elif [ "$out" != "$e15_ref" ]; then
    echo "ci: FAIL — exp_e15_streaming output differs between LOVM_THREADS=1 and =4"
    exit 1
  fi
done
echo "ci: exp_e15_streaming smoke ok (thread-invariant)"

# Smoke the strategic-adversary gate across the full shard × thread
# matrix: the binary itself exits nonzero if any regret cell dips below
# -1e-9 (a profitable deviation — a truthfulness break) or if no
# adversary strictly loses, and because e16 pins every topology per cell
# in code, all four passes must also produce byte-identical tables.
e16_ref=""
for shards in 1 8; do
  for t in 1 4; do
    if ! out=$(LOVM_SCALE=0.1 LOVM_SHARDS=$shards LOVM_THREADS=$t \
        ./target/release/exp_e16_adversary); then
      echo "ci: FAIL — exp_e16_adversary truthfulness gate broke at LOVM_SHARDS=$shards LOVM_THREADS=$t"
      printf '%s\n' "$out" | tail -5
      exit 1
    fi
    if [ -z "$e16_ref" ]; then
      e16_ref="$out"
    elif [ "$out" != "$e16_ref" ]; then
      echo "ci: FAIL — exp_e16_adversary output differs at LOVM_SHARDS=$shards LOVM_THREADS=$t"
      exit 1
    fi
  done
done
echo "ci: exp_e16_adversary truthfulness gate ok (shard- and thread-invariant)"

# Smoke the payment-path benchmark in both modes (tiny sample counts: this
# checks the bins run and report, not the timings themselves) and gate the
# payment-engine regression: the incremental leave-one-out engine must stay
# at least 5x faster than the naive per-winner re-solve for the n=1024
# budgeted payment path on a single worker. The win is algorithmic
# (O(n·G) total DP work vs O(n²·G)), so one core is exactly where it must
# show.
bench_out=""
for t in 1 4; do
  out=$(LOVM_THREADS=$t LOVM_BENCH_SAMPLES=5 LOVM_BENCH_BATCH_NS=200000 \
    ./target/release/bench_payments)
  if [ "$t" = 1 ]; then bench_out="$out"; fi
done

median_of() {
  # `|| true`: a missing row must fall through to the awk diagnostic below,
  # not kill the script via set -e / pipefail at the assignment.
  printf '%s\n' "$bench_out" | { grep -F "\"bench\":\"payment_engine/$1\"" || true; } \
    | sed 's/.*"median_ns":\([0-9.e+-]*\).*/\1/'
}
naive_ns=$(median_of "1024_naive")
incremental_ns=$(median_of "1024_incremental")
awk -v n="$naive_ns" -v i="$incremental_ns" 'BEGIN {
  if (n == "" || i == "" || i <= 0) {
    print "ci: payment_engine rows missing from bench_payments output"; exit 1
  }
  speedup = n / i
  printf "ci: payment engine n=1024 speedup %.2fx (naive %.0f ns, incremental %.0f ns)\n", speedup, n, i
  if (speedup < 5.0) {
    print "ci: FAIL — incremental payment engine below the 5x floor at n=1024"; exit 1
  }
}'

# Smoke the solver roofline in both thread modes and gate the arena-vs-
# legacy regression: on the capped budgeted n=4096 row (the shape a LOVM
# round actually solves — budget plus max_winners), the arena-backed
# branchless DP must stay at least 1.3x faster than the legacy allocating
# solver. The win is micro-architectural (no per-item traceback allocation,
# saturated-span skipping, word-packed flags), so one worker is where it
# must show; LOVM_THREADS only exercises that the bin runs under both.
solver_out=""
for t in 1 4; do
  out=$(LOVM_THREADS=$t LOVM_BENCH_SAMPLES=5 LOVM_BENCH_BATCH_NS=200000 \
    ./target/release/bench_solver)
  if [ "$t" = 1 ]; then solver_out="$out"; fi
done
solver_median_of() {
  printf '%s\n' "$solver_out" | { grep -F "\"bench\":\"solver/$1\"" || true; } \
    | sed 's/.*"median_ns":\([0-9.e+-]*\).*/\1/'
}
legacy_ns=$(solver_median_of "budgetcap_n4096_g4000_legacy")
arena_ns=$(solver_median_of "budgetcap_n4096_g4000_arena")
awk -v l="$legacy_ns" -v a="$arena_ns" 'BEGIN {
  if (l == "" || a == "" || a <= 0) {
    print "ci: solver rows missing from bench_solver output"; exit 1
  }
  speedup = l / a
  printf "ci: solver arena n=4096 g=4000 budget+cap speedup %.2fx (legacy %.0f ns, arena %.0f ns)\n", speedup, l, a
  if (speedup < 1.3) {
    print "ci: FAIL — arena solver below the 1.3x floor on the capped budgeted n=4096 row"; exit 1
  }
}'
# The roofline artifact must be valid JSON with the expected shape, proven
# by re-parsing the file through metrics::json (`--check` runs the parser
# and schema assertions without re-benchmarking).
if ! [ -s BENCH_solver.json ]; then
  echo "ci: FAIL — bench_solver did not write BENCH_solver.json"; exit 1
fi
if ! ./target/release/bench_solver --check BENCH_solver.json; then
  echo "ci: FAIL — BENCH_solver.json failed metrics::json validation"; exit 1
fi
echo "ci: BENCH_solver.json written and parse-validated"

# Telemetry overhead gate: observing the full streamed round loop must
# cost no more than 5% vs telemetry disabled. bench_telemetry times the
# two modes as back-to-back pairs (no sink, so the delta is pure
# recording) and reports the median per-pair on/off ratio — pairing is
# what makes the gate stable on a noisy box, where sequential phases
# drift by far more than the effect being measured.
tel_bench=$(LOVM_THREADS=1 LOVM_BENCH_SAMPLES=25 ./target/release/bench_telemetry)
ratio=$(printf '%s\n' "$tel_bench" \
  | { grep -F "\"bench\":\"telemetry_stream/overhead\"" || true; } \
  | sed 's/.*"median_ratio":\([0-9.e+-]*\).*/\1/')
awk -v r="$ratio" 'BEGIN {
  if (r == "" || r <= 0) {
    print "ci: overhead row missing from bench_telemetry output"; exit 1
  }
  printf "ci: telemetry round-loop overhead %+.2f%% (paired median)\n", (r - 1.0) * 100
  if (r > 1.05) {
    print "ci: FAIL — telemetry overhead above the 5% ceiling"; exit 1
  }
}'

# Kill-and-recover smoke for the event-sourced market server: run an
# uninterrupted reference session, then the same session interrupted by
# SIGKILL with a round's arrivals journaled but unsealed, restart the
# server from its journal, and require the client's concatenated sealed
# lines and final state line to be byte-identical to the reference. The
# drive client regenerates bids deterministically from the seed, so the
# re-drive after the crash re-sends exactly what the torn tail lost.
smoke_dir=$(mktemp -d)
serve_pid=""
follower_pid=""
cleanup_serve() {
  [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
  [ -n "$follower_pid" ] && kill "$follower_pid" 2>/dev/null || true
  rm -rf "$smoke_dir"
}
trap cleanup_serve EXIT

start_server() { # $1 = journal dir, $2 = log file; sets serve_addr/serve_pid
  LOVM_JOURNAL="$1" LOVM_SNAPSHOT_EVERY=2 LOVM_COMPACT="${compact_every:-0}" \
    ./target/release/lovm serve --addr 127.0.0.1:0 --v 20 --budget 2 >"$2" 2>&1 &
  serve_pid=$!
  serve_addr=""
  for _ in $(seq 1 100); do
    serve_addr=$(sed -n 's/^listening on //p' "$2")
    [ -n "$serve_addr" ] && break
    sleep 0.1
  done
  if [ -z "$serve_addr" ]; then
    echo "ci: FAIL — lovm serve did not come up"
    exit 1
  fi
}
stop_server() { # $1 = signal
  kill "-$1" "$serve_pid" 2>/dev/null || true
  wait "$serve_pid" 2>/dev/null || true
  serve_pid=""
}
drive() {
  ./target/release/lovm drive --addr "$serve_addr" --session smoke \
    --seed 7 --bidders 6 "$@" 2>/dev/null
}

start_server "$smoke_dir/ref" "$smoke_dir/ref.log"
drive --from 0 --to 8 >"$smoke_dir/ref.out"
stop_server TERM

start_server "$smoke_dir/crash" "$smoke_dir/c1.log"
drive --from 0 --to 4 >"$smoke_dir/c1.out"
# Journal round 4's arrivals but never seal them, then SIGKILL mid-round.
drive --from 4 --to 5 --partial >/dev/null
stop_server KILL

start_server "$smoke_dir/crash" "$smoke_dir/c2.log"
drive --from 0 --to 8 >"$smoke_dir/c2.out"
stop_server TERM

cat "$smoke_dir/c1.out" "$smoke_dir/c2.out" \
  | { grep '"event":"sealed"' || true; } >"$smoke_dir/crash.sealed"
{ grep '"event":"sealed"' "$smoke_dir/ref.out" || true; } >"$smoke_dir/ref.sealed"
if ! diff -q "$smoke_dir/crash.sealed" "$smoke_dir/ref.sealed" >/dev/null; then
  echo "ci: FAIL — recovered server's sealed rounds differ from the uninterrupted run"
  diff "$smoke_dir/crash.sealed" "$smoke_dir/ref.sealed" || true
  exit 1
fi
if ! diff -q <(grep '"event":"state"' "$smoke_dir/c2.out") \
            <(grep '"event":"state"' "$smoke_dir/ref.out") >/dev/null; then
  echo "ci: FAIL — recovered server's final state differs from the uninterrupted run"
  exit 1
fi
echo "ci: serve kill-and-recover smoke ok (byte-identical after SIGKILL)"

# Kill-and-promote smoke for live replication: a leader serves with
# journal compaction on, `lovm follow` replicates it into its own journal
# directory, the leader is SIGKILLed mid-round (a round's arrivals
# journaled but unsealed), the follower promotes itself to a server, and
# re-driving against the promoted server must yield sealed/state lines
# byte-identical to an uninterrupted reference run.
compact_every=2
start_server "$smoke_dir/repl-ref" "$smoke_dir/repl-ref.log"
./target/release/lovm drive --addr "$serve_addr" --session repl \
  --seed 7 --bidders 6 --from 0 --to 8 2>/dev/null >"$smoke_dir/repl-ref.out"
stop_server TERM

start_server "$smoke_dir/leader" "$smoke_dir/leader.log"
LOVM_JOURNAL="$smoke_dir/replica" LOVM_SNAPSHOT_EVERY=2 LOVM_COMPACT=2 \
  ./target/release/lovm follow --addr "$serve_addr" --session repl \
  --serve-addr 127.0.0.1:0 --v 20 --budget 2 >"$smoke_dir/follow.log" 2>&1 &
follower_pid=$!
./target/release/lovm drive --addr "$serve_addr" --session repl \
  --seed 7 --bidders 6 --from 0 --to 4 2>/dev/null >"$smoke_dir/p1.out"
./target/release/lovm drive --addr "$serve_addr" --session repl \
  --seed 7 --bidders 6 --from 4 --to 5 --partial 2>/dev/null >/dev/null
stop_server KILL

promoted_addr=""
for _ in $(seq 1 100); do
  promoted_addr=$(sed -n 's/^listening on //p' "$smoke_dir/follow.log")
  [ -n "$promoted_addr" ] && break
  sleep 0.1
done
if [ -z "$promoted_addr" ]; then
  echo "ci: FAIL — the follower did not promote itself after the leader died"
  cat "$smoke_dir/follow.log"
  exit 1
fi
./target/release/lovm drive --addr "$promoted_addr" --session repl \
  --seed 7 --bidders 6 --from 0 --to 8 2>/dev/null >"$smoke_dir/p2.out"
kill "$follower_pid" 2>/dev/null || true
wait "$follower_pid" 2>/dev/null || true
follower_pid=""

cat "$smoke_dir/p1.out" "$smoke_dir/p2.out" \
  | { grep '"event":"sealed"' || true; } >"$smoke_dir/promoted.sealed"
{ grep '"event":"sealed"' "$smoke_dir/repl-ref.out" || true; } >"$smoke_dir/repl-ref.sealed"
if ! diff -q "$smoke_dir/promoted.sealed" "$smoke_dir/repl-ref.sealed" >/dev/null; then
  echo "ci: FAIL — promoted follower's sealed rounds differ from the uninterrupted run"
  diff "$smoke_dir/promoted.sealed" "$smoke_dir/repl-ref.sealed" || true
  exit 1
fi
if ! diff -q <(grep '"event":"state"' "$smoke_dir/p2.out") \
            <(grep '"event":"state"' "$smoke_dir/repl-ref.out") >/dev/null; then
  echo "ci: FAIL — promoted follower's final state differs from the uninterrupted run"
  exit 1
fi
echo "ci: follower kill-and-promote smoke ok (byte-identical after leader SIGKILL)"

# Telemetry serve smoke: the same served session with LOVM_TELEMETRY on
# must be a pure observer — the drive client's full output byte-identical
# to the telemetry-off reference run above — while the server emits one
# valid lovm.telemetry.round.v1 record per sealed round, and the live
# `stats` wire command must feed a `lovm top` frame.
compact_every=0
telemetry_file="$smoke_dir/telemetry.jsonl"
export LOVM_TELEMETRY="$telemetry_file"
start_server "$smoke_dir/tel" "$smoke_dir/tel.log"
drive --from 0 --to 8 >"$smoke_dir/tel.out"
top_out=$(./target/release/lovm top --addr "$serve_addr" --frames 1)
stop_server TERM
unset LOVM_TELEMETRY
if ! diff -q "$smoke_dir/tel.out" "$smoke_dir/ref.out" >/dev/null; then
  echo "ci: FAIL — telemetry-on serve output differs from the telemetry-off run"
  diff "$smoke_dir/tel.out" "$smoke_dir/ref.out" || true
  exit 1
fi
./target/release/lovm telemetry-check --file "$telemetry_file"
records=$(wc -l <"$telemetry_file")
if [ "$records" -ne 8 ]; then
  echo "ci: FAIL — expected 8 telemetry records (one per sealed round), got $records"
  exit 1
fi
if ! printf '%s\n' "$top_out" | grep -q "rounds.sealed"; then
  echo "ci: FAIL — lovm top frame is missing the rounds.sealed counter"
  printf '%s\n' "$top_out"
  exit 1
fi
echo "ci: telemetry serve smoke ok (pure observer, $records valid records, live top frame)"

echo "ci: all green"
